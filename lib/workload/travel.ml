(* The social-travel workload of Section 5: pairs of users who want to fly
   on the same flight and sit in adjacent seats, issued either as
   entangled resource transactions (through the quantum database) or as
   "intelligent social" bookings (the paper's non-quantum baseline). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Table = Relational.Table
module Database = Relational.Database
module Store = Relational.Store
module Rtxn = Quantum.Rtxn
open Logic

type user = {
  name : string;
  partner : string;
  flight : int;
}

(* 2×pairs_per_flight users per flight, listed pair-by-pair:
   [a0; b0; a1; b1; ...]. *)
let make_users ~flights ~pairs_per_flight =
  List.concat
    (List.init flights (fun f ->
         List.concat
           (List.init pairs_per_flight (fun p ->
                let a = Printf.sprintf "u%d_%da" f p and b = Printf.sprintf "u%d_%db" f p in
                [ { name = a; partner = b; flight = f };
                  { name = b; partner = a; flight = f };
                ]))))

(* The entangled resource transaction of Section 5.1 (Figure 1 in Datalog
   form): book any available seat on the user's flight, with an OPTIONAL
   request to sit adjacent to the partner; deferred until the partner
   arrives. *)
let entangled_txn user =
  let s = Term.var (Term.fresh_var "s") and s2 = Term.var (Term.fresh_var "s2") in
  let f = Term.int user.flight in
  let name = Term.str user.name and partner = Term.str user.partner in
  Rtxn.make ~label:user.name ~trigger:(Rtxn.On_partner user.partner)
    ~hard:[ Atom.make "Available" [ f; s ] ]
    ~optional:
      [ Atom.make "Bookings" [ partner; f; s2 ]; Atom.make "Adjacent" [ s; s2 ] ]
    ~updates:
      [ Rtxn.Del (Atom.make "Available" [ f; s ]);
        Rtxn.Ins (Atom.make "Bookings" [ name; f; s ]);
      ]
    ()

(* The same transactions in the Datalog text surface — what a client of
   the network front door actually sends.  [Datalog_parser.parse_txn]
   with the user's label and an [On_partner] trigger lowers the
   entangled text to exactly the structure [entangled_txn] builds. *)
let entangled_txn_text user =
  Printf.sprintf
    "-Available(%d, s), +Bookings(\"%s\", %d, s) :-1 Available(%d, s), ?Bookings(\"%s\", %d, s2), ?Adjacent(s, s2)"
    user.flight user.name user.flight user.flight user.partner user.flight

let plain_txn_text user =
  Printf.sprintf "-Available(%d, s), +Bookings(\"%s\", %d, s) :-1 Available(%d, s)"
    user.flight user.name user.flight user.flight

(* A plain (non-entangled) resource transaction: any seat, no preference. *)
let plain_txn user =
  let s = Term.var (Term.fresh_var "s") in
  let f = Term.int user.flight in
  Rtxn.make ~label:user.name
    ~hard:[ Atom.make "Available" [ f; s ] ]
    ~updates:
      [ Rtxn.Del (Atom.make "Available" [ f; s ]);
        Rtxn.Ins (Atom.make "Bookings" [ Term.str user.name; f; s ]);
      ]
    ()

(* Group coordination (the enmeshed-queries direction the paper cites):
   one transaction books a seat for every group member, with an OPTIONAL
   all-adjacent preference — a family of three asking for a full row.
   The members' seats form an adjacency chain s1-s2-...-sk with all seats
   pairwise distinct (distinctness is already forced by the hard body's
   set semantics on Available, but the chain alone would allow s1 = s3 via
   the two orientations of one pair, so the chain is stated on distinct
   seats explicitly). *)
let group_txn ?(trigger = Rtxn.On_demand) ~members ~flight () =
  match members with
  | [] -> invalid_arg "group_txn: empty group"
  | leader :: _ ->
    let f = Term.int flight in
    let seats = List.map (fun m -> (m, Term.V (Term.fresh_var ("s_" ^ m)))) members in
    let hard = List.map (fun (_, s) -> Atom.make "Available" [ f; s ]) seats in
    let updates =
      List.concat_map
        (fun (m, s) ->
          [ Rtxn.Del (Atom.make "Available" [ f; s ]);
            Rtxn.Ins (Atom.make "Bookings" [ Term.str m; f; s ]);
          ])
        seats
    in
    let rec chain = function
      | (_, s1) :: ((_, s2) :: _ as rest) ->
        Formula.atom (Atom.make "Adjacent" [ s1; s2 ]) :: chain rest
      | _ -> []
    in
    let rec distinct = function
      | (_, s1) :: rest ->
        List.map (fun (_, s2) -> Formula.neq s1 s2) rest @ distinct rest
      | [] -> []
    in
    let optional_constraints =
      match seats with
      | [ _ ] -> []
      | _ -> chain seats @ distinct seats
    in
    Rtxn.make ~label:leader ~trigger ~hard ~optional_constraints ~updates ()

(* Did the whole group end up seated in one adjacency chain? *)
let group_coordinated db members =
  let seats =
    List.map
      (fun m ->
        match Flights.booking_of db m with
        | Some (f, s) -> Some (f, s)
        | None -> None)
      members
  in
  if List.exists Option.is_none seats then false
  else begin
    let seats = List.filter_map Fun.id seats in
    let flights = List.map fst seats in
    let same_flight = List.for_all (fun f -> f = List.hd flights) flights in
    let sorted = List.sort Int.compare (List.map snd seats) in
    let rec chained = function
      | s1 :: (s2 :: _ as rest) -> Flights.seats_adjacent db s1 s2 && chained rest
      | _ -> true
    in
    same_flight && chained sorted
  end

(* The read a traveller issues to learn the assigned seat; on a quantum
   database this forces grounding of the traveller's pending booking. *)
let seat_query user =
  let f = Term.var (Term.fresh_var "f") and s = Term.var (Term.fresh_var "s") in
  Solver.Query.make ~head:[ f; s ]
    ~body:[ Atom.make "Bookings" [ Term.str user.name; f; s ] ]
    ()

(* -- Arrival orders (Table 1) ---------------------------------------------- *)

type order =
  | Alternate (* T_i entangles with T_{i+1} *)
  | Random_order (* T_i entangles with some T_j, random *)
  | In_order (* T_i entangles with T_{i+N/2} *)
  | Reverse_order (* T_i entangles with T_{N-i} *)

let order_to_string = function
  | Alternate -> "Alternate"
  | Random_order -> "Random"
  | In_order -> "In Order"
  | Reverse_order -> "Reverse Order"

(* Reorder a pair-by-pair user list according to the arrival order.  The
   per-flight structure is preserved: orders interleave within each
   flight, then flights are interleaved round-robin (arrival order across
   flights does not affect coordination, since flights are independent). *)
let order_users order rng users =
  let by_flight = Hashtbl.create 8 in
  List.iter
    (fun u ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_flight u.flight) in
      Hashtbl.replace by_flight u.flight (u :: existing))
    users;
  let flights = Hashtbl.fold (fun f _ acc -> f :: acc) by_flight [] |> List.sort Int.compare in
  let per_flight =
    List.map
      (fun f ->
        let pair_list = List.rev (Hashtbl.find by_flight f) in
        (* pair_list is [a0; b0; a1; b1; ...] *)
        let firsts = List.filteri (fun i _ -> i mod 2 = 0) pair_list in
        let seconds = List.filteri (fun i _ -> i mod 2 = 1) pair_list in
        match order with
        | Alternate -> pair_list
        | In_order -> firsts @ seconds
        | Reverse_order -> firsts @ List.rev seconds
        | Random_order -> Prng.shuffle_list rng pair_list)
      flights
  in
  (* Round-robin across flights so every arrival order exercises partition
     independence the same way. *)
  let queues = Array.of_list (List.map Array.of_list per_flight) in
  let cursors = Array.make (Array.length queues) 0 in
  let out = ref [] in
  let remaining = ref (List.length users) in
  while !remaining > 0 do
    Array.iteri
      (fun qi queue ->
        if cursors.(qi) < Array.length queue then begin
          out := queue.(cursors.(qi)) :: !out;
          cursors.(qi) <- cursors.(qi) + 1;
          decr remaining
        end)
      queues
  done;
  List.rev !out

(* -- The Intelligent Social baseline (Section 5.2) -------------------------- *)

(* An IS user books immediately: first check whether the partner already
   holds a seat and grab a free adjacent one; otherwise take a seat whose
   neighbour is still free (so the partner can later join); otherwise any
   seat.  All through the same durable store as the quantum engine, so
   timing comparisons are substrate-fair.  Seat choices scan in ascending
   seat order for determinism. *)

let free_seats db fno =
  Table.lookup (Database.table db "Available") [| Some (Value.Int fno); None |]
  |> List.filter_map (fun row ->
    match Tuple.to_list row with
    | [ _; Value.Int s ] -> Some s
    | _ -> None)
  |> List.sort Int.compare

let adjacent_seats db s =
  Table.lookup (Database.table db "Adjacent") [| Some (Value.Int s); None |]
  |> List.filter_map (fun row ->
    match Tuple.to_list row with
    | [ _; Value.Int s2 ] -> Some s2
    | _ -> None)
  |> List.sort Int.compare

let book store user seat =
  let ops =
    [ Database.Delete ("Available", Tuple.of_list [ Value.Int user.flight; Value.Int seat ]);
      Database.Insert
        ( "Bookings",
          Tuple.of_list [ Value.Str user.name; Value.Int user.flight; Value.Int seat ] );
    ]
  in
  match Store.apply store ops with
  | Ok () -> true
  | Error _ -> false

let is_book store user =
  let db = Store.db store in
  let free = free_seats db user.flight in
  let is_free s = List.mem s free in
  let next_to_partner =
    match Flights.booking_of db user.partner with
    | Some (f, ps) when f = user.flight ->
      List.find_opt is_free (adjacent_seats db ps)
    | Some _ | None -> None
  in
  let chosen =
    match next_to_partner with
    | Some s -> Some s
    | None ->
      (* A seat with a free neighbour, to keep the pair viable. *)
      (match
         List.find_opt (fun s -> List.exists is_free (adjacent_seats db s)) free
       with
       | Some s -> Some s
       | None ->
         (match free with
          | s :: _ -> Some s
          | [] -> None))
  in
  match chosen with
  | Some s -> book store user s
  | None -> false

(* -- Coordination accounting ------------------------------------------------ *)

(* Users sitting adjacent to their partner, counted once per user. *)
let coordinated_users db users =
  List.length
    (List.filter
       (fun u ->
         match Flights.booking_of db u.name, Flights.booking_of db u.partner with
         | Some (f1, s1), Some (f2, s2) -> f1 = f2 && Flights.seats_adjacent db s1 s2
         | _ -> false)
       users)

(* Upper bound on coordinated users: one couple per row, per flight,
   limited by the couples that actually issued both bookings. *)
let max_coordination geometry users =
  let present = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace present u.name ()) users;
  let pairs_per_flight = Hashtbl.create 8 in
  List.iter
    (fun u ->
      if String.compare u.name u.partner < 0 && Hashtbl.mem present u.partner then begin
        let existing =
          Option.value ~default:0 (Hashtbl.find_opt pairs_per_flight u.flight)
        in
        Hashtbl.replace pairs_per_flight u.flight (existing + 1)
      end)
    users;
  Hashtbl.fold
    (fun _ pairs acc -> acc + (2 * min pairs geometry.Flights.rows_per_flight))
    pairs_per_flight 0

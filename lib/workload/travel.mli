(** The social-travel workload of the paper's evaluation: entangled
    adjacent-seat bookings, the four arrival orders of Table 1, and the
    Intelligent Social baseline. *)

type user = {
  name : string;
  partner : string;
  flight : int;
}

val make_users : flights:int -> pairs_per_flight:int -> user list
(** Pair-by-pair list: [[a0; b0; a1; b1; ...]] per flight. *)

val entangled_txn : user -> Quantum.Rtxn.t
(** Book any available seat on the user's flight with an OPTIONAL
    adjacent-to-partner condition; grounds when the partner arrives. *)

val plain_txn : user -> Quantum.Rtxn.t

val entangled_txn_text : user -> string
(** {!entangled_txn} in the Datalog text surface the network front door
    speaks: parsing it with the user's label and an [On_partner] trigger
    yields the same transaction structure. *)

val plain_txn_text : user -> string

val group_txn :
  ?trigger:Quantum.Rtxn.trigger -> members:string list -> flight:int -> unit -> Quantum.Rtxn.t
(** One transaction booking a seat per group member, with an OPTIONAL
    all-adjacent (full row) preference — group coordination in the style
    of the enmeshed queries the paper cites. *)

val group_coordinated : Relational.Database.t -> string list -> bool
(** All members booked on one flight in one adjacency chain. *)

val seat_query : user -> Solver.Query.t

type order =
  | Alternate
  | Random_order
  | In_order
  | Reverse_order

val order_to_string : order -> string

val order_users : order -> Prng.t -> user list -> user list
(** Arrange arrivals per Table 1, interleaving flights round-robin. *)

val free_seats : Relational.Database.t -> int -> int list
val adjacent_seats : Relational.Database.t -> int -> int list
val book : Relational.Store.t -> user -> int -> bool

val is_book : Relational.Store.t -> user -> bool
(** One Intelligent Social booking: adjacent to the partner when already
    booked, else a seat with a free neighbour, else any seat. *)

val coordinated_users : Relational.Database.t -> user list -> int
val max_coordination : Flights.geometry -> user list -> int
(** One couple per row per flight, over couples with both partners
    present in [users]. *)

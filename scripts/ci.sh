#!/usr/bin/env bash
# CI entry point: build, run the test suites, then smoke-run the bench
# harness and check that it produced a well-formed telemetry snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== crash-monkey smoke =="
# 200 deterministic crash/recover cycles with fault injection; the
# subcommand exits 1 on any recovery-invariant violation.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 200 --seed 7

echo "== bench smoke (micro) =="
rm -f results/metrics.json
dune exec bench/main.exe -- --only micro

echo "== telemetry check =="
if [ ! -f results/metrics.json ]; then
  echo "FAIL: bench run did not write results/metrics.json" >&2
  exit 1
fi
python3 - <<'EOF'
import json, sys
try:
    with open("results/metrics.json") as f:
        d = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/metrics.json is not valid JSON: {e}")
for key in ("counters", "gauges", "histograms"):
    if key not in d:
        sys.exit(f"FAIL: results/metrics.json missing '{key}' section")
micro = [k for k in d["gauges"] if k.startswith("bench.micro.")]
if not micro:
    sys.exit("FAIL: no bench.micro.* gauges in results/metrics.json")
print(f"ok: metrics.json valid ({len(micro)} micro-bench gauges)")
EOF

echo "CI OK"

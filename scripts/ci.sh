#!/usr/bin/env bash
# CI entry point: build, run the test suites, then smoke-run the bench
# harness and check that it produced a well-formed telemetry snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== crash-monkey smoke =="
# 200 deterministic crash/recover cycles with fault injection; the
# subcommand exits 1 on any recovery-invariant violation.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 200 --seed 7

echo "== crash-monkey under domain pool =="
# Same contract with every cycle's cache-refill fan-out on a 2-domain
# pool: WAL ordering and recovery must not care where solver work ran.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 50 --seed 7 --domains 2

echo "== bench smoke (micro) =="
rm -f results/metrics.json
dune exec bench/main.exe -- --only micro

echo "== scaling smoke (--domains 2) =="
# The committed-baseline workload (10 flights x 150 seats) at 1 and 2
# domains: asserts identical admission outcomes across pool sizes (the
# scaling subcommand exits non-zero on divergence) and gates the
# 1-domain admission latency against the committed BENCH_scaling.json.
rm -f results/BENCH_scaling.json
dune exec bin/qdb_cli.exe -- scaling --domains 1,2 --out results/BENCH_scaling.json

echo "== scaling regression gate =="
python3 - <<'EOF'
import json, sys
try:
    with open("results/BENCH_scaling.json") as f:
        fresh = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/BENCH_scaling.json invalid: {e}")
if fresh.get("schema") != "qdb.bench.scaling/v1":
    sys.exit("FAIL: unexpected scaling schema")
if not fresh.get("deterministic"):
    sys.exit("FAIL: admission outcomes diverged across domain counts")
try:
    with open("BENCH_scaling.json") as f:
        base = json.load(f)
except FileNotFoundError:
    sys.exit("FAIL: committed BENCH_scaling.json baseline is missing")
def one_domain(rec):
    pts = [p for p in rec["series"] if p["domains"] == 1]
    if not pts:
        sys.exit("FAIL: no 1-domain point in scaling series")
    return pts[0]["ns_per_admission"]
if fresh["workload"] != base["workload"]:
    sys.exit("FAIL: scaling workload drifted from the committed baseline; "
             "re-record BENCH_scaling.json")
now, then = one_domain(fresh), one_domain(base)
ratio = now / then if then else 1.0
print(f"1-domain ns/admission: {now:.0f} vs baseline {then:.0f} ({ratio:.2f}x)")
if ratio > 1.25:
    sys.exit(f"FAIL: 1-domain admission latency regressed {ratio:.2f}x (>1.25x)")
print("ok: scaling baseline within 25%")
EOF

echo "== telemetry check =="
if [ ! -f results/metrics.json ]; then
  echo "FAIL: bench run did not write results/metrics.json" >&2
  exit 1
fi
python3 - <<'EOF'
import json, sys
try:
    with open("results/metrics.json") as f:
        d = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/metrics.json is not valid JSON: {e}")
for key in ("counters", "gauges", "histograms"):
    if key not in d:
        sys.exit(f"FAIL: results/metrics.json missing '{key}' section")
micro = [k for k in d["gauges"] if k.startswith("bench.micro.")]
if not micro:
    sys.exit("FAIL: no bench.micro.* gauges in results/metrics.json")
print(f"ok: metrics.json valid ({len(micro)} micro-bench gauges)")
EOF

echo "CI OK"

#!/usr/bin/env bash
# CI entry point: build, run the test suites, then smoke-run the bench
# harness and check that it produced a well-formed telemetry snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== crash-monkey smoke =="
# 200 deterministic crash/recover cycles with fault injection; the
# subcommand exits 1 on any recovery-invariant violation.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 200 --seed 7

echo "== crash-monkey under domain pool =="
# Same contract with every cycle's cache-refill fan-out on a 2-domain
# pool: WAL ordering and recovery must not care where solver work ran.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 50 --seed 7 --domains 2

echo "== crash-monkey actor-routed =="
# Same contract with every post-fixture engine call round-tripping
# through an owning actor on a real spawned domain: the injected crash
# must propagate across the domain boundary and recovery must hold.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 50 --seed 7 --actors 2

echo "== admission sweep (incremental vs from-scratch) =="
# Pending-depth sweep at k in {5,10,20,40}, each with delta composition
# on and off; the bench itself exits non-zero when accept/reject
# outcomes diverge between the modes or across 1/2/4-domain pools.
# Runs before the micro smoke so the final metrics.json carries the
# micro gauges the telemetry check expects.
rm -f results/BENCH_admission.json
dune exec bench/main.exe -- --only admission

echo "== admission regression gate =="
# Gate on the k=20 cost RELATIVE to the from-scratch ablation measured
# in the same process, not on absolute wall time: the incremental run is
# ~0.6ms total, where run-to-run machine noise alone exceeds 25%, while
# the relative cost is self-normalizing and still blows up if delta
# composition or witness seeding regresses toward from-scratch.  The
# comparator (schema/workload/determinism checks plus the per-schema
# gates) is `qdb_cli bench diff`, shared with the scaling gate below.
dune exec bin/qdb_cli.exe -- bench diff BENCH_admission.json results/BENCH_admission.json --gate 25

echo "== contention sweep (flash crowds) =="
# Flash-crowd workloads (ticket sales, hotel overbooking) driven into
# 10-50% rejection regimes, plus a budget-squeezed point that produces
# real Overloaded outcomes; the bench exits non-zero if the sweep is
# nondeterministic across back-to-back runs.
rm -f results/BENCH_contention.json
dune exec bench/main.exe -- --only contention

echo "== contention regression gate =="
# Outcome counts are pinned exactly (they are deterministic functions of
# the workload seed); latencies are recorded but never gated.  The gate
# also requires >= 1 point inside the 10-50% rejection band and a
# three-way accept/reject/overload latency split on every point.
dune exec bin/qdb_cli.exe -- bench diff BENCH_contention.json results/BENCH_contention.json --gate 25

echo "== chaos (engine-wide fault injection) =="
# 200 deterministic chaos cycles, each replayed at 1, 2 and 4 domains:
# squeezed-governor admissions, poisoned refill/recheck fan-out jobs,
# bit-identical event traces across pool sizes, invariant intact after
# every cycle.  The subcommand exits 1 on any violation.
dune exec bin/qdb_cli.exe -- chaos --cycles 200 --seed 1234

echo "== rejection-path smoke =="
# Over-capacity workload (6 seats, 16 travellers): asserts the rejected
# counters, rejected-outcome submit spans and flight-recorder records
# all fire; the bench exits non-zero on any violation.
dune exec bench/main.exe -- --only rejection

echo "== sat backend sweep (cdcl vs dpll vs backtracking) =="
# Pending-depth sweep at k in {40,80,160} plus a dense entangled point,
# across the three admission backends on identical workloads; the bench
# itself exits non-zero when accept/reject outcomes diverge between
# backends at any point.
rm -f results/BENCH_sat.json
dune exec bench/main.exe -- --only sat

echo "== sat regression gate =="
# Structural gates are exact (outcomes deterministic, CDCL >= 3x DPLL at
# k=40, CDCL native at k=160 with zero fallbacks and real conflicts,
# DPLL over budget at k=160); the absolute ns-per-admission latency gate
# is generous (200%) because CI hardware differs from the recording
# host, while the relative speedups self-normalize.
dune exec bin/qdb_cli.exe -- bench diff BENCH_sat.json results/BENCH_sat.json --gate 200

echo "== bench smoke (micro) =="
rm -f results/metrics.json
dune exec bench/main.exe -- --only micro

echo "== scaling smoke (actor mode, --domains 1,2) =="
# The committed-baseline workload (10 flights x 150 seats) in actor mode
# at 1 and 2 requested domains: asserts identical admission outcomes
# across actor counts and real rejections/overloads on the contended
# companion points (the scaling subcommand exits non-zero on
# divergence).  On failure, a per-phase profile of the same workload is
# captured so the CI artifact shows where admission time went.
rm -f results/BENCH_scaling.json
dune exec bin/qdb_cli.exe -- scaling --mode actor --domains 1,2 --out results/BENCH_scaling.json \
  || { mkdir -p results; \
       dune exec bin/qdb_cli.exe -- profile --top 10 > results/scaling_failure_profile.txt 2>&1 || true; \
       exit 1; }

echo "== scaling regression gate (no-slowdown) =="
# Same comparator as the admission gate.  Schema v3 additionally gates:
# speedup_vs_1 >= 0.90 at every point (more domains may never slow
# admission down — the pathology this PR removed), queue_wait < 5% of
# wall, per-phase attribution >= 95% of measured actor busy time, and
# real rejected/Overloaded outcomes on the contended companion series.
dune exec bin/qdb_cli.exe -- bench diff BENCH_scaling.json results/BENCH_scaling.json --gate 25 \
  || { mkdir -p results; \
       dune exec bin/qdb_cli.exe -- profile --top 10 > results/scaling_failure_profile.txt 2>&1 || true; \
       exit 1; }

echo "== server smoke (serve / open-loop load / clean shutdown) =="
# Real socket round-trip in two processes: a served engine takes an
# open-loop burst from the load generator, then shuts down gracefully
# on SIGINT.  `load` exits 1 on any error response; `wait` surfaces the
# server's own exit status (1 on engine failure).
dune build bin/qdb_cli.exe
./_build/default/bin/qdb_cli.exe serve --port 7817 --sessions 2 --requests 100 --duration 60 &
SERVER_PID=$!
sleep 1
./_build/default/bin/qdb_cli.exe load --port 7817 --sessions 2 --requests 100 --hz 600
kill -INT "$SERVER_PID"
wait "$SERVER_PID"

echo "== crash-monkey server mode (acked implies durable) =="
# Live TCP sessions into the group-commit queue over a volatile write
# buffer; crashes arm at PRNG-chosen syncs.  Every acked admission must
# survive WAL replay; un-acked ones may vanish but never half-apply.
dune exec bin/qdb_cli.exe -- crashmonkey --server --cycles 30 --seed 7
dune exec bin/qdb_cli.exe -- crashmonkey --server --cycles 15 --seed 7 --domains 2

echo "== server bench (group commit + admission latency) =="
# Loopback open-loop bench on a file-backed WAL, run twice with the same
# seed inside the subcommand; it records the warm run and the
# deterministic flag the gate requires.
rm -f results/BENCH_server.json
dune exec bin/qdb_cli.exe -- bench server --out results/BENCH_server.json

echo "== server regression gate =="
# Outcome counts pinned exactly to the committed baseline, zero error
# responses, mean group-commit batch size > 1, accept/reject
# p50/p99/p999 splits present.  The accept-p99 latency gate is generous
# (400%): absolute socket + fsync latency on shared CI hardware is
# noisy, while the structural checks above are exact.
dune exec bin/qdb_cli.exe -- bench diff BENCH_server.json results/BENCH_server.json --gate 400

echo "== telemetry check =="
if [ ! -f results/metrics.json ]; then
  echo "FAIL: bench run did not write results/metrics.json" >&2
  exit 1
fi
python3 - <<'EOF'
import json, sys
try:
    with open("results/metrics.json") as f:
        d = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/metrics.json is not valid JSON: {e}")
for key in ("counters", "gauges", "histograms"):
    if key not in d:
        sys.exit(f"FAIL: results/metrics.json missing '{key}' section")
micro = [k for k in d["gauges"] if k.startswith("bench.micro.")]
if not micro:
    sys.exit("FAIL: no bench.micro.* gauges in results/metrics.json")
if "bench.micro.sat.propagate.ns_per_literal" not in d["gauges"]:
    sys.exit("FAIL: bench.micro.sat.propagate.ns_per_literal gauge missing")
print(f"ok: metrics.json valid ({len(micro)} micro-bench gauges)")
EOF

echo "CI OK"

#!/usr/bin/env bash
# CI entry point: build, run the test suites, then smoke-run the bench
# harness and check that it produced a well-formed telemetry snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== crash-monkey smoke =="
# 200 deterministic crash/recover cycles with fault injection; the
# subcommand exits 1 on any recovery-invariant violation.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 200 --seed 7

echo "== crash-monkey under domain pool =="
# Same contract with every cycle's cache-refill fan-out on a 2-domain
# pool: WAL ordering and recovery must not care where solver work ran.
dune exec bin/qdb_cli.exe -- crashmonkey --cycles 50 --seed 7 --domains 2

echo "== admission sweep (incremental vs from-scratch) =="
# Pending-depth sweep at k in {5,10,20,40}, each with delta composition
# on and off; the bench itself exits non-zero when accept/reject
# outcomes diverge between the modes or across 1/2/4-domain pools.
# Runs before the micro smoke so the final metrics.json carries the
# micro gauges the telemetry check expects.
rm -f results/BENCH_admission.json
dune exec bench/main.exe -- --only admission

echo "== admission regression gate =="
python3 - <<'EOF'
import json, sys
try:
    with open("results/BENCH_admission.json") as f:
        fresh = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/BENCH_admission.json invalid: {e}")
if fresh.get("schema") != "qdb.bench.admission/v1":
    sys.exit("FAIL: unexpected admission schema")
if not fresh.get("deterministic"):
    sys.exit("FAIL: admission outcomes diverged across modes or domain counts")
try:
    with open("BENCH_admission.json") as f:
        base = json.load(f)
except FileNotFoundError:
    sys.exit("FAIL: committed BENCH_admission.json baseline is missing")
if fresh["workload"] != base["workload"]:
    sys.exit("FAIL: admission workload drifted from the committed baseline; "
             "re-record BENCH_admission.json")
# Gate on the k=20 cost RELATIVE to the from-scratch ablation measured
# in the same process, not on absolute wall time: the incremental run is
# ~0.6ms total, where run-to-run machine noise alone exceeds 25%, while
# the relative cost is self-normalizing and still blows up if delta
# composition or witness seeding regresses toward from-scratch.
def rel_cost(rec, k):
    by_mode = {p["mode"]: p["ns_per_admission"]
               for p in rec["series"] if p["k"] == k}
    if "incremental" not in by_mode or "from-scratch" not in by_mode:
        sys.exit(f"FAIL: k={k} points missing from admission series")
    if not by_mode["from-scratch"]:
        sys.exit(f"FAIL: zero from-scratch time at k={k}")
    return by_mode["incremental"] / by_mode["from-scratch"]
now, then = rel_cost(fresh, 20), rel_cost(base, 20)
ratio = now / then if then else 1.0
print(f"k=20 incremental/from-scratch cost: {now:.3f} vs baseline {then:.3f} ({ratio:.2f}x)")
if ratio > 1.25:
    sys.exit(f"FAIL: k=20 relative admission cost regressed {ratio:.2f}x (>1.25x)")
speedup = {s["k"]: s["x"] for s in fresh.get("speedup_vs_scratch", [])}.get(20, 0.0)
if speedup < 2.0:
    sys.exit(f"FAIL: incremental speedup at k=20 is {speedup:.2f}x (<2x vs from-scratch)")
print(f"ok: admission baseline within 25% (k=20 speedup {speedup:.2f}x vs from-scratch)")
EOF

echo "== bench smoke (micro) =="
rm -f results/metrics.json
dune exec bench/main.exe -- --only micro

echo "== scaling smoke (--domains 2) =="
# The committed-baseline workload (10 flights x 150 seats) at 1 and 2
# domains: asserts identical admission outcomes across pool sizes (the
# scaling subcommand exits non-zero on divergence) and gates the
# 1-domain admission latency against the committed BENCH_scaling.json.
rm -f results/BENCH_scaling.json
dune exec bin/qdb_cli.exe -- scaling --domains 1,2 --out results/BENCH_scaling.json

echo "== scaling regression gate =="
python3 - <<'EOF'
import json, sys
try:
    with open("results/BENCH_scaling.json") as f:
        fresh = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/BENCH_scaling.json invalid: {e}")
if fresh.get("schema") != "qdb.bench.scaling/v1":
    sys.exit("FAIL: unexpected scaling schema")
if not fresh.get("deterministic"):
    sys.exit("FAIL: admission outcomes diverged across domain counts")
try:
    with open("BENCH_scaling.json") as f:
        base = json.load(f)
except FileNotFoundError:
    sys.exit("FAIL: committed BENCH_scaling.json baseline is missing")
def one_domain(rec):
    pts = [p for p in rec["series"] if p["domains"] == 1]
    if not pts:
        sys.exit("FAIL: no 1-domain point in scaling series")
    return pts[0]["ns_per_admission"]
if fresh["workload"] != base["workload"]:
    sys.exit("FAIL: scaling workload drifted from the committed baseline; "
             "re-record BENCH_scaling.json")
now, then = one_domain(fresh), one_domain(base)
ratio = now / then if then else 1.0
print(f"1-domain ns/admission: {now:.0f} vs baseline {then:.0f} ({ratio:.2f}x)")
if ratio > 1.25:
    sys.exit(f"FAIL: 1-domain admission latency regressed {ratio:.2f}x (>1.25x)")
print("ok: scaling baseline within 25%")
EOF

echo "== telemetry check =="
if [ ! -f results/metrics.json ]; then
  echo "FAIL: bench run did not write results/metrics.json" >&2
  exit 1
fi
python3 - <<'EOF'
import json, sys
try:
    with open("results/metrics.json") as f:
        d = json.load(f)
except Exception as e:
    sys.exit(f"FAIL: results/metrics.json is not valid JSON: {e}")
for key in ("counters", "gauges", "histograms"):
    if key not in d:
        sys.exit(f"FAIL: results/metrics.json missing '{key}' section")
micro = [k for k in d["gauges"] if k.startswith("bench.micro.")]
if not micro:
    sys.exit("FAIL: no bench.micro.* gauges in results/metrics.json")
print(f"ok: metrics.json valid ({len(micro)} micro-bench gauges)")
EOF

echo "CI OK"

(* Tests for the shared-nothing actor runtime and everything routed
   through it: deterministic key routing, bounded-mailbox backpressure,
   the two-phase cross-group protocol over the engine's
   prepare/commit/abort API, crash recovery with actor-routed engine
   calls, and the 1-vs-N outcome-identity pin against the sharded
   runner. *)

module Runtime = Actor.Runtime
module Qdb = Quantum.Qdb
module Metrics = Quantum.Metrics
module Rtxn = Quantum.Rtxn
module Runner = Workload.Runner
module Travel = Workload.Travel
module Flights = Workload.Flights

let with_runtime ?mailbox_capacity ?(clamp = false) ~actors ~make f =
  let rt = Runtime.create ?mailbox_capacity ~clamp ~actors ~make () in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) (fun () -> f rt)

(* -- Routing ----------------------------------------------------------------- *)

let test_routing_deterministic () =
  with_runtime ~actors:3 ~make:(fun _ -> ()) @@ fun rt ->
  Alcotest.(check int) "live = requested when unclamped" 3 (Runtime.live rt);
  List.iter
    (fun key ->
      let o = Runtime.owner rt ~key in
      Alcotest.(check bool)
        (Printf.sprintf "owner of %d in range" key)
        true
        (o >= 0 && o < Runtime.live rt);
      Alcotest.(check int)
        (Printf.sprintf "owner of %d stable" key)
        o (Runtime.owner rt ~key))
    [ 0; 1; 2; 3; 17; 1000; -1; -17; min_int + 1 ];
  (* Same key, same group instance: [make] runs exactly once per key. *)
  let made = Mutex.create () in
  let made_keys = ref [] in
  with_runtime ~actors:2
    ~make:(fun key ->
      Mutex.lock made;
      made_keys := key :: !made_keys;
      Mutex.unlock made;
      ref 0)
  @@ fun rt ->
  List.iter (fun _ -> Runtime.post rt ~key:7 (fun r -> incr r)) (List.init 20 Fun.id);
  Runtime.drain rt;
  Alcotest.(check (list int)) "one group built" [ 7 ] !made_keys;
  match Runtime.group rt ~key:7 with
  | Some r -> Alcotest.(check int) "all 20 posts hit the one group" 20 !r
  | None -> Alcotest.fail "group 7 missing after posts"

let test_clamp_on_this_host () =
  let hw = Domain.recommended_domain_count () in
  let rt = Runtime.create ~clamp:true ~actors:(hw + 8) ~make:(fun _ -> ()) () in
  Fun.protect
    ~finally:(fun () -> Runtime.shutdown rt)
    (fun () ->
      Alcotest.(check int) "requested preserved" (hw + 8) (Runtime.requested rt);
      Alcotest.(check bool) "live clamped to hardware" true (Runtime.live rt <= hw))

(* -- Backpressure ------------------------------------------------------------ *)

let test_mailbox_bounds () =
  let q = Par.Mailbox.create ~capacity:2 () in
  Alcotest.(check bool) "send 1" true (Par.Mailbox.try_send q 1);
  Alcotest.(check bool) "send 2" true (Par.Mailbox.try_send q 2);
  Alcotest.(check bool) "full" false (Par.Mailbox.try_send q 3);
  Alcotest.(check (option int)) "fifo" (Some 1) (Par.Mailbox.try_recv q);
  Alcotest.(check bool) "space again" true (Par.Mailbox.try_send q 4);
  Par.Mailbox.close q;
  Alcotest.(check bool) "closed rejects" false (Par.Mailbox.try_send q 5);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Par.Mailbox.try_recv q);
  Alcotest.(check (option int)) "drains after close" (Some 4) (Par.Mailbox.try_recv q);
  Alcotest.(check (option int)) "empty and closed" None (Par.Mailbox.recv q)

let test_blocking_send_fifo () =
  (* A producer domain pushes 200 items through a 4-slot mailbox: the
     blocking [send] is the backpressure, and FIFO order must survive
     the producer stalling on a full queue. *)
  let q = Par.Mailbox.create ~capacity:4 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to 199 do
          assert (Par.Mailbox.send q i)
        done;
        Par.Mailbox.close q)
  in
  let rec collect acc =
    match Par.Mailbox.recv q with
    | Some v -> collect (v :: acc)
    | None -> List.rev acc
  in
  let got = collect [] in
  Domain.join producer;
  Alcotest.(check (list int)) "all items in order" (List.init 200 Fun.id) got

let test_runtime_backpressure () =
  (* Tiny mailboxes, many more posts than capacity: the driver must
     block rather than drop, so after [drain] every increment landed. *)
  with_runtime ~mailbox_capacity:2 ~actors:2 ~make:(fun _ -> ref 0) @@ fun rt ->
  let per_key = 150 in
  List.iter
    (fun key ->
      for _ = 1 to per_key do
        Runtime.post rt ~key (fun r -> incr r)
      done)
    [ 0; 1; 2; 3 ];
  Runtime.drain rt;
  List.iter
    (fun key ->
      match Runtime.group rt ~key with
      | Some r -> Alcotest.(check int) (Printf.sprintf "key %d complete" key) per_key !r
      | None -> Alcotest.fail "group missing")
    [ 0; 1; 2; 3 ];
  let messages = Array.fold_left (fun n s -> n + s.Runtime.messages) 0 (Runtime.stats rt) in
  Alcotest.(check int) "every post processed exactly once" (4 * per_key) messages

(* -- Group-commit batch boundary --------------------------------------------- *)

(* Group state for the hook tests: how much work landed vs how much the
   last batch-end boundary covered — the WAL-sync shape without a WAL. *)
type synced = { mutable work : int; mutable synced : int }

let test_batch_end_covers_all_work () =
  let rt =
    Runtime.create ~clamp:false
      ~on_batch_end:(fun g -> g.synced <- g.work)
      ~actors:2
      ~make:(fun _ -> { work = 0; synced = 0 })
      ()
  in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  List.iter
    (fun key ->
      for _ = 1 to 100 do
        Runtime.post rt ~key (fun g -> g.work <- g.work + 1)
      done)
    [ 0; 1; 2; 3 ];
  (* The drain barrier is a batch boundary: nothing the driver can now
     read may be ahead of its last sync. *)
  Runtime.drain rt;
  List.iter
    (fun key ->
      match Runtime.group rt ~key with
      | Some g ->
        Alcotest.(check int) (Printf.sprintf "key %d: all work landed" key) 100 g.work;
        Alcotest.(check int)
          (Printf.sprintf "key %d: boundary covered every message" key)
          g.work g.synced
      | None -> Alcotest.fail "group missing")
    [ 0; 1; 2; 3 ]

let test_batch_end_inline_per_task () =
  (* A single live actor runs inline: every task is its own batch, so
     the hook holds after each post without any drain. *)
  let boundaries = ref 0 in
  let rt =
    Runtime.create ~clamp:false
      ~on_batch_end:(fun g ->
        incr boundaries;
        g.synced <- g.work)
      ~actors:1
      ~make:(fun _ -> { work = 0; synced = 0 })
      ()
  in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  for i = 1 to 5 do
    Runtime.post rt ~key:9 (fun g -> g.work <- g.work + 1);
    match Runtime.group rt ~key:9 with
    | Some g ->
      Alcotest.(check int) (Printf.sprintf "post %d synced inline" i) i g.synced
    | None -> Alcotest.fail "group missing"
  done;
  Alcotest.(check int) "one boundary per inline task" 5 !boundaries

let test_batch_end_failure_surfaces () =
  (* A failing sync is a failing batch: the exception parks like a
     posted task's and re-raises at the next drain. *)
  let armed = ref true in
  let rt =
    Runtime.create ~clamp:false
      ~on_batch_end:(fun _ ->
        if !armed then begin
          armed := false;
          failwith "sync exploded"
        end)
      ~actors:2
      ~make:(fun _ -> ref 0)
      ()
  in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  Runtime.post rt ~key:0 (fun r -> incr r);
  match Runtime.drain rt with
  | () -> Alcotest.fail "batch-end failure swallowed"
  | exception Failure msg -> Alcotest.(check string) "the hook's failure" "sync exploded" msg

(* -- Two-phase cross-group coordination over the engine ---------------------- *)

(* One engine group per key: a 1-flight fixture with [rows] seat rows
   (3 seats each) and its own user roster. *)
type eng = {
  qdb : Qdb.t;
  users : Travel.user list;
}

let make_eng ~rows _key =
  let geometry = { Flights.flights = 1; rows_per_flight = rows; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  { qdb = Qdb.create store; users = Travel.make_users ~flights:1 ~pairs_per_flight:6 }

let user g n = List.nth g.users n

let counts g =
  let m = Qdb.metrics g.qdb in
  (m.Metrics.submitted, m.Metrics.committed, m.Metrics.rejected, m.Metrics.overloaded)

(* Four engine counters as a labelled list (alcotest has no quad). *)
let check_counts msg (a, b, c, d) (a', b', c', d') =
  Alcotest.(check (list int)) msg [ a; b; c; d ] [ a'; b'; c'; d' ]

let test_coordinate_commit () =
  with_runtime ~actors:2 ~make:(make_eng ~rows:2) @@ fun rt ->
  (* Keys 0 and 1 land on different actors: the full vote/freeze path. *)
  Alcotest.(check bool) "two owners" true
    (Runtime.owner rt ~key:0 <> Runtime.owner rt ~key:1);
  let result =
    Runtime.coordinate rt ~keys:[ 0; 1 ]
      ~prepare:(fun k g ->
        match Qdb.prepare g.qdb (Travel.plain_txn (user g k)) with
        | Ok p -> Ok p
        | Error r -> Error (k, r))
      ~commit:(fun _ g p -> ignore (Qdb.commit_prepared g.qdb p : Qdb.commit_result))
      ~abort:(fun _ g p -> Qdb.abort_prepared g.qdb p)
  in
  Alcotest.(check bool) "both voted yes" true (Result.is_ok result);
  Runtime.drain rt;
  List.iter
    (fun key ->
      match Runtime.group rt ~key with
      | Some g ->
        check_counts (Printf.sprintf "group %d committed its leg" key) (1, 1, 0, 0)
          (counts g)
      | None -> Alcotest.fail "engine group missing")
    [ 0; 1 ]

let test_coordinate_abort () =
  with_runtime ~actors:2 ~make:(make_eng ~rows:1) @@ fun rt ->
  (* Fill group 1 to capacity (3 seats on 1 row) so its prepare rejects. *)
  Runtime.call rt ~key:1 (fun g ->
      List.iteri
        (fun n _ ->
          if n < 3 then
            match Qdb.submit g.qdb (Travel.plain_txn (user g n)) with
            | Qdb.Committed _ -> ()
            | _ -> Alcotest.fail "capacity fill should commit")
        g.users);
  let result =
    Runtime.coordinate rt ~keys:[ 0; 1 ]
      ~prepare:(fun k g ->
        let n = if k = 1 then 3 else 0 in
        match Qdb.prepare g.qdb (Travel.plain_txn (user g n)) with
        | Ok p -> Ok p
        | Error r -> Error (k, r))
      ~commit:(fun _ g p -> ignore (Qdb.commit_prepared g.qdb p : Qdb.commit_result))
      ~abort:(fun _ g p -> Qdb.abort_prepared g.qdb p)
  in
  (match result with
   | Error (1, Qdb.Rejected _) -> ()
   | Error (k, _) -> Alcotest.fail (Printf.sprintf "abort blamed group %d, wanted 1" k)
   | Ok () -> Alcotest.fail "full flight must abort the coordination");
  Runtime.drain rt;
  (* Group 0's prepare was aborted: no submission recorded, and the
     group still serves admissions normally. *)
  (match Runtime.group rt ~key:0 with
   | Some g ->
     check_counts "abort left group 0 untouched" (0, 0, 0, 0) (counts g)
   | None -> Alcotest.fail "engine group missing");
  let after =
    Runtime.call rt ~key:0 (fun g -> Qdb.submit g.qdb (Travel.plain_txn (user g 0)))
  in
  (match after with
   | Qdb.Committed _ -> ()
   | _ -> Alcotest.fail "group 0 must still admit after an aborted coordination");
  (* Group 1: 3 fill commits + 1 refused prepare, all accounted. *)
  match Runtime.group rt ~key:1 with
  | Some g ->
    check_counts "group 1 accounting closed" (4, 3, 1, 0) (counts g)
  | None -> Alcotest.fail "engine group missing"

let test_coordinate_single_owner_fast_path () =
  (* Keys 0 and 2 share actor 0 of 2: the protocol must collapse to a
     local run, and still commit both legs. *)
  with_runtime ~actors:2 ~make:(make_eng ~rows:2) @@ fun rt ->
  Alcotest.(check int) "keys share an owner"
    (Runtime.owner rt ~key:0) (Runtime.owner rt ~key:2);
  let result =
    Runtime.coordinate rt ~keys:[ 0; 2 ]
      ~prepare:(fun k g ->
        match Qdb.prepare g.qdb (Travel.plain_txn (user g (k mod 2))) with
        | Ok p -> Ok p
        | Error r -> Error r)
      ~commit:(fun _ g p -> ignore (Qdb.commit_prepared g.qdb p : Qdb.commit_result))
      ~abort:(fun _ g p -> Qdb.abort_prepared g.qdb p)
  in
  Alcotest.(check bool) "local collapse commits" true (Result.is_ok result);
  Runtime.drain rt;
  List.iter
    (fun key ->
      match Runtime.group rt ~key with
      | Some g ->
        check_counts (Printf.sprintf "group %d committed" key) (1, 1, 0, 0) (counts g)
      | None -> Alcotest.fail "engine group missing")
    [ 0; 2 ]

(* -- Crash monkey with actor-routed engine calls ----------------------------- *)

let test_crash_monkey_actor_mode () =
  let s = Workload.Crash_monkey.run ~cycles:15 ~seed:4242 ~actors:2 () in
  Alcotest.(check int) "cycles ran" 15 s.Workload.Crash_monkey.cycles;
  Alcotest.(check bool) "crashes propagated across the domain boundary" true
    (s.Workload.Crash_monkey.crashes > 0);
  match s.Workload.Crash_monkey.violations with
  | [] -> ()
  | (cycle, what) :: _ ->
    Alcotest.fail (Printf.sprintf "recovery violation in cycle %d: %s" cycle what)

(* -- Outcome identity: 1 actor, N actors, sharded runner --------------------- *)

let test_outcome_identity () =
  let spec =
    {
      Runner.default_spec with
      Runner.geometry = { Flights.flights = 4; rows_per_flight = 4; dest = "LA" };
      pairs_per_flight = 6;
      order = Travel.Random_order;
      seed = 77;
    }
  in
  let engine = Runner.Quantum_engine Qdb.default_config in
  let fingerprint (o : Runner.outcome) =
    (o.Runner.committed, o.Runner.rejected, o.Runner.coordinated, o.Runner.max_possible)
  in
  let reference = fingerprint (Runner.run_sharded engine spec) in
  List.iter
    (fun actors ->
      let o, report = Runner.run_actors ~clamp:false ~actors engine spec in
      Alcotest.(check int)
        (Printf.sprintf "%d actors live (unclamped)" actors)
        actors report.Runner.actors_live;
      check_counts
        (Printf.sprintf "outcomes identical at %d actor(s)" actors)
        reference (fingerprint o))
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "routing: deterministic, one group per key" `Quick
      test_routing_deterministic;
    Alcotest.test_case "routing: hardware clamp" `Quick test_clamp_on_this_host;
    Alcotest.test_case "mailbox: bounds, fifo, close" `Quick test_mailbox_bounds;
    Alcotest.test_case "mailbox: blocking send keeps fifo" `Quick test_blocking_send_fifo;
    Alcotest.test_case "runtime: backpressure loses nothing" `Quick
      test_runtime_backpressure;
    Alcotest.test_case "group commit: drain boundary covers all work" `Quick
      test_batch_end_covers_all_work;
    Alcotest.test_case "group commit: inline mode syncs per task" `Quick
      test_batch_end_inline_per_task;
    Alcotest.test_case "group commit: hook failure re-raises at drain" `Quick
      test_batch_end_failure_surfaces;
    Alcotest.test_case "2pc: cross-actor commit" `Quick test_coordinate_commit;
    Alcotest.test_case "2pc: cross-actor abort rolls back" `Quick test_coordinate_abort;
    Alcotest.test_case "2pc: single-owner fast path" `Quick
      test_coordinate_single_owner_fast_path;
    Alcotest.test_case "crash monkey: actor-routed engine" `Quick
      test_crash_monkey_actor_mode;
    Alcotest.test_case "outcome identity: 1 vs 4 actors vs sharded" `Quick
      test_outcome_identity;
  ]

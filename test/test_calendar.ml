(* Tests for the calendar scenario (paper Section 1's second motivating
   domain): deferred meeting slots, late high-priority displacement,
   preference windows. *)

module Qdb = Quantum.Qdb
module Calendar = Workload.Calendar

let team = [ "alice"; "bob" ]

let fresh ?(days = 2) ?(hours = 3) () =
  let store = Calendar.fresh_store ~people:team ~days ~hours_per_day:hours () in
  Qdb.create store

let test_meeting_defers () =
  let qdb = fresh () in
  (match Qdb.submit qdb (Calendar.meeting_txn ~mid:"standup" ~participants:team ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  Alcotest.(check int) "no slot fixed yet" 0
    (Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Meeting"));
  (* Reading the slot collapses it. *)
  (match Qdb.read qdb (Calendar.slot_query "standup") with
   | [ _ ] -> ()
   | _ -> Alcotest.fail "expected one slot");
  Alcotest.(check bool) "slot now fixed" true (Calendar.meeting_slot (Qdb.db qdb) "standup" <> None)

let test_high_priority_displacement () =
  let qdb = fresh () in
  ignore (Qdb.submit qdb (Calendar.meeting_txn ~mid:"offsite" ~participants:team ()));
  (* The CEO takes slot 0 from alice — must commit despite the pending
     offsite, which silently excludes slot 0. *)
  (match Qdb.submit qdb (Calendar.fixed_meeting_txn ~mid:"ceo" ~participants:[ "alice" ] ~slot:0 ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "ceo rejected: %s" r);
  ignore (Qdb.ground_all qdb);
  let db = Qdb.db qdb in
  Alcotest.(check (option int)) "ceo holds slot 0" (Some 0) (Calendar.meeting_slot db "ceo");
  (match Calendar.meeting_slot db "offsite" with
   | Some slot -> Alcotest.(check bool) "offsite moved off slot 0" true (slot <> 0)
   | None -> Alcotest.fail "offsite lost")

let test_calendar_fills_up () =
  let qdb = fresh ~days:1 ~hours:2 () in
  (* Two slots, both participants: two meetings fit, a third does not. *)
  let submit mid =
    match Qdb.submit qdb (Calendar.meeting_txn ~mid ~participants:team ()) with
    | Qdb.Committed _ -> true
    | Qdb.Rejected _ | Qdb.Overloaded _ -> false
  in
  Alcotest.(check bool) "first fits" true (submit "m1");
  Alcotest.(check bool) "second fits" true (submit "m2");
  Alcotest.(check bool) "third rejected" false (submit "m3");
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "two meetings scheduled" 2
    (Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Meeting"))

let test_preference_window () =
  let qdb = fresh ~days:2 ~hours:3 () in
  (* Prefer the first day (slots 0..2); plenty of room, so the preference
     must be honoured. *)
  ignore
    (Qdb.submit qdb (Calendar.meeting_txn ~prefer_before:3 ~mid:"early" ~participants:team ()));
  ignore (Qdb.ground_all qdb);
  (match Calendar.meeting_slot (Qdb.db qdb) "early" with
   | Some slot -> Alcotest.(check bool) "within window" true (slot < 3)
   | None -> Alcotest.fail "not scheduled");
  (* Fill the first day with fixed meetings; the preference must yield. *)
  let qdb2 = fresh ~days:2 ~hours:3 () in
  List.iter
    (fun slot ->
      ignore
        (Qdb.submit qdb2
           (Calendar.fixed_meeting_txn ~mid:(Printf.sprintf "fix%d" slot) ~participants:team
              ~slot ())))
    [ 0; 1; 2 ];
  (match Qdb.submit qdb2 (Calendar.meeting_txn ~prefer_before:3 ~mid:"late" ~participants:team ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "should commit outside the window: %s" r);
  ignore (Qdb.ground_all qdb2);
  (match Calendar.meeting_slot (Qdb.db qdb2) "late" with
   | Some slot -> Alcotest.(check bool) "outside window when full" true (slot >= 3)
   | None -> Alcotest.fail "not scheduled")

let test_partial_overlap () =
  (* Meetings with overlapping participant sets contend on the shared
     person only. *)
  let store =
    Calendar.fresh_store ~people:[ "alice"; "bob"; "carol" ] ~days:1 ~hours_per_day:1 ()
  in
  let qdb = Qdb.create store in
  (* One slot: alice+bob meet; bob+carol cannot (bob is double-booked),
     but... there is only one slot, so the second must be rejected. *)
  (match Qdb.submit qdb (Calendar.meeting_txn ~mid:"ab" ~participants:[ "alice"; "bob" ] ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "ab rejected: %s" r);
  (match Qdb.submit qdb (Calendar.meeting_txn ~mid:"bc" ~participants:[ "bob"; "carol" ] ()) with
   | Qdb.Committed _ -> Alcotest.fail "bob cannot attend two meetings in one slot"
   | Qdb.Rejected _ | Qdb.Overloaded _ -> ());
  (* carol alone is free. *)
  (match Qdb.submit qdb (Calendar.meeting_txn ~mid:"c" ~participants:[ "carol" ] ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "carol rejected: %s" r)

let suite =
  [ Alcotest.test_case "meeting defers" `Quick test_meeting_defers;
    Alcotest.test_case "high-priority displacement" `Quick test_high_priority_displacement;
    Alcotest.test_case "calendar fills up" `Quick test_calendar_fills_up;
    Alcotest.test_case "preference window" `Quick test_preference_window;
    Alcotest.test_case "partial participant overlap" `Quick test_partial_overlap;
  ]

(* Tests for the cloud-allocation domain: order constraints over instance
   capacities, region preferences, and the headline deferred-assignment
   win — small tenants must not strand big-instance demand. *)

module Qdb = Quantum.Qdb
module Cloud = Workload.Cloud

let small = { Cloud.cores = 2; region = "us-east" }
let medium = { Cloud.cores = 8; region = "us-east" }
let big = { Cloud.cores = 32; region = "eu-west" }

let fresh fleet = Qdb.create (Cloud.fresh_store (Cloud.fleet fleet))

let cores_of qdb tenant =
  match Cloud.lease_of (Qdb.db qdb) tenant with
  | Some iid ->
    (match Cloud.instance_spec (Qdb.db qdb) iid with
     | Some spec -> Some spec.Cloud.cores
     | None -> None)
  | None -> None

let test_capacity_constraint () =
  let qdb = fresh [ (2, small); (1, big) ] in
  (* A 16-core request can only land on the big instance. *)
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"heavy" ~min_cores:16 ()) with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  Alcotest.(check (option int)) "got 32 cores" (Some 32) (cores_of qdb "heavy");
  (* A second 16-core request has nowhere to go. *)
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"heavy2" ~min_cores:16 ()) with
   | Qdb.Rejected _ | Qdb.Overloaded _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "no big instance left");
  (* Small requests still fit. *)
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"light" ~min_cores:1 ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "light rejected: %s" r)

let test_deferred_assignment_protects_big_instances () =
  (* One small + one big instance.  A flexible tenant (any size) commits
     first; a 16-core tenant arrives later.  With deferred assignment both
     fit: the flexible one is steered onto the small instance. *)
  let qdb = fresh [ (1, small); (1, big) ] in
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"flexible" ~min_cores:1 ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "flexible rejected: %s" r);
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"heavy" ~min_cores:16 ()) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "heavy rejected — deferral failed: %s" r);
  ignore (Qdb.ground_all qdb);
  Alcotest.(check (option int)) "flexible on small" (Some 2) (cores_of qdb "flexible");
  Alcotest.(check (option int)) "heavy on big" (Some 32) (cores_of qdb "heavy")

let test_eager_baseline_strands_demand () =
  (* The counterfactual: grounding the flexible tenant immediately (an
     eager client) may burn the big instance. *)
  let qdb = fresh [ (1, small); (1, big) ] in
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"flexible" ~min_cores:1 ()) with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id) (* eager: fix immediately *)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "flexible rejected: %s" r);
  match Qdb.submit qdb (Cloud.lease_txn ~tenant:"heavy" ~min_cores:16 ()) with
  | Qdb.Rejected _ | Qdb.Overloaded _ ->
    (* The eager grounding happened to take the big instance: stranded. *)
    Alcotest.(check (option int)) "flexible sits on big" (Some 32) (cores_of qdb "flexible")
  | Qdb.Committed _ ->
    (* The eager grounding happened to pick the small instance — lucky;
       either way the test documents that eagerness gives up the
       guarantee deferral provides. *)
    ()

let test_region_preference () =
  let qdb = fresh [ (1, small); (1, { Cloud.cores = 2; region = "eu-west" }) ] in
  (match Qdb.submit qdb (Cloud.lease_txn ~prefer_region:"eu-west" ~tenant:"eu" ~min_cores:1 ()) with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  (match Cloud.lease_of (Qdb.db qdb) "eu" with
   | Some iid ->
     (match Cloud.instance_spec (Qdb.db qdb) iid with
      | Some spec -> Alcotest.(check string) "preferred region honoured" "eu-west" spec.Cloud.region
      | None -> Alcotest.fail "missing spec")
   | None -> Alcotest.fail "not leased");
  (* When the preferred region is exhausted the lease still succeeds. *)
  (match Qdb.submit qdb (Cloud.lease_txn ~prefer_region:"eu-west" ~tenant:"eu2" ~min_cores:1 ()) with
   | Qdb.Committed id ->
     ignore (Qdb.ground qdb id);
     (match Cloud.lease_of (Qdb.db qdb) "eu2" with
      | Some iid ->
        (match Cloud.instance_spec (Qdb.db qdb) iid with
         | Some spec -> Alcotest.(check string) "degraded region" "us-east" spec.Cloud.region
         | None -> Alcotest.fail "missing spec")
      | None -> Alcotest.fail "not leased")
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "preference must not reject: %s" r)

let test_fleet_exhaustion_and_recovery () =
  let backend = Relational.Wal.mem_backend () in
  let store = Cloud.fresh_store ~backend (Cloud.fleet [ (2, medium) ]) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Cloud.lease_txn ~tenant:"t1" ~min_cores:4 ()));
  ignore (Qdb.submit qdb (Cloud.lease_txn ~tenant:"t2" ~min_cores:4 ()));
  (match Qdb.submit qdb (Cloud.lease_txn ~tenant:"t3" ~min_cores:4 ()) with
   | Qdb.Rejected _ | Qdb.Overloaded _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "fleet is logically exhausted");
  (* Pending leases survive a crash. *)
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "two pending after recovery" 2 (Qdb.pending_count qdb');
  ignore (Qdb.ground_all qdb');
  Alcotest.(check bool) "t1 leased" true (Cloud.lease_of (Qdb.db qdb') "t1" <> None);
  Alcotest.(check bool) "t2 leased" true (Cloud.lease_of (Qdb.db qdb') "t2" <> None)

let suite =
  [ Alcotest.test_case "capacity constraint" `Quick test_capacity_constraint;
    Alcotest.test_case "deferral protects big instances" `Quick
      test_deferred_assignment_protects_big_instances;
    Alcotest.test_case "eager baseline strands demand" `Quick test_eager_baseline_strands_demand;
    Alcotest.test_case "region preference" `Quick test_region_preference;
    Alcotest.test_case "exhaustion and recovery" `Quick test_fleet_exhaustion_and_recovery;
  ]

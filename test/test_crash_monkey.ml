(* The crash-monkey harness itself: bounded deterministic crash/recover
   cycles must find zero recovery-invariant violations, exercise every
   damage mode, and reproduce exactly from the seed. *)

module Crash_monkey = Workload.Crash_monkey

let test_no_violations () =
  let s = Crash_monkey.run ~cycles:60 ~seed:7 () in
  Alcotest.(check int) "all cycles ran" 60 s.Crash_monkey.cycles;
  Alcotest.(check bool) "crashes actually happened" true (s.Crash_monkey.crashes > 40);
  List.iter
    (fun (cycle, what) -> Alcotest.failf "cycle %d: %s" cycle what)
    s.Crash_monkey.violations

let test_all_damage_modes_exercised () =
  let s = Crash_monkey.run ~cycles:60 ~seed:7 () in
  Alcotest.(check bool) "clean crashes" true (s.Crash_monkey.clean_crashes > 0);
  Alcotest.(check bool) "torn crashes" true (s.Crash_monkey.torn_crashes > 0);
  Alcotest.(check bool) "bit-flip crashes" true (s.Crash_monkey.flipped_crashes > 0);
  Alcotest.(check bool) "mid-log flips" true (s.Crash_monkey.mid_log_flips > 0);
  Alcotest.(check bool) "lenient truncations" true (s.Crash_monkey.truncations > 0)

let test_deterministic () =
  let a = Crash_monkey.run ~cycles:20 ~seed:99 () in
  let b = Crash_monkey.run ~cycles:20 ~seed:99 () in
  Alcotest.(check bool) "same seed, same summary" true (a = b);
  let c = Crash_monkey.run ~cycles:20 ~seed:100 () in
  Alcotest.(check bool) "different seed, different schedule" true
    (a.Crash_monkey.records_kept <> c.Crash_monkey.records_kept
     || a.Crash_monkey.records_dropped <> c.Crash_monkey.records_dropped
     || a.Crash_monkey.crashes <> c.Crash_monkey.crashes)

(* -- Server mode: the ack-after-fsync contract over real sockets ---------- *)

let test_server_contract domains () =
  let s = Crash_monkey.run_server ~cycles:12 ~seed:77 ~domains () in
  Alcotest.(check int) "all cycles ran" 12 s.Crash_monkey.srv_cycles;
  Alcotest.(check bool) "crashes actually happened" true (s.Crash_monkey.srv_crashes > 6);
  Alcotest.(check bool) "admissions were acked" true (s.Crash_monkey.srv_acked > 0);
  Alcotest.(check bool) "group commit actually batched" true (s.Crash_monkey.srv_batches > 0);
  List.iter
    (fun (cycle, what) -> Alcotest.failf "cycle %d: %s" cycle what)
    s.Crash_monkey.srv_violations

let test_server_volatility_bites () =
  (* The volatile write buffer must make some un-acked submission vanish
     across the cycles — otherwise the acked/un-acked distinction was
     never at stake and the contract is vacuous. *)
  let s = Crash_monkey.run_server ~cycles:12 ~seed:77 ~domains:1 () in
  Alcotest.(check bool) "un-acked submissions vanished" true
    (s.Crash_monkey.srv_lost_unacked > 0)

let suite =
  [ Alcotest.test_case "no violations over 60 cycles" `Quick test_no_violations;
    Alcotest.test_case "all damage modes exercised" `Quick test_all_damage_modes_exercised;
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
    Alcotest.test_case "server: acked admissions survive (1 domain)" `Quick
      (test_server_contract 1);
    Alcotest.test_case "server: acked admissions survive (2 domains)" `Quick
      (test_server_contract 2);
    Alcotest.test_case "server: acked admissions survive (4 domains)" `Quick
      (test_server_contract 4);
    Alcotest.test_case "server: un-acked losses occur" `Quick test_server_volatility_bites;
  ]

(* The crash-monkey harness itself: bounded deterministic crash/recover
   cycles must find zero recovery-invariant violations, exercise every
   damage mode, and reproduce exactly from the seed. *)

module Crash_monkey = Workload.Crash_monkey

let test_no_violations () =
  let s = Crash_monkey.run ~cycles:60 ~seed:7 () in
  Alcotest.(check int) "all cycles ran" 60 s.Crash_monkey.cycles;
  Alcotest.(check bool) "crashes actually happened" true (s.Crash_monkey.crashes > 40);
  List.iter
    (fun (cycle, what) -> Alcotest.failf "cycle %d: %s" cycle what)
    s.Crash_monkey.violations

let test_all_damage_modes_exercised () =
  let s = Crash_monkey.run ~cycles:60 ~seed:7 () in
  Alcotest.(check bool) "clean crashes" true (s.Crash_monkey.clean_crashes > 0);
  Alcotest.(check bool) "torn crashes" true (s.Crash_monkey.torn_crashes > 0);
  Alcotest.(check bool) "bit-flip crashes" true (s.Crash_monkey.flipped_crashes > 0);
  Alcotest.(check bool) "mid-log flips" true (s.Crash_monkey.mid_log_flips > 0);
  Alcotest.(check bool) "lenient truncations" true (s.Crash_monkey.truncations > 0)

let test_deterministic () =
  let a = Crash_monkey.run ~cycles:20 ~seed:99 () in
  let b = Crash_monkey.run ~cycles:20 ~seed:99 () in
  Alcotest.(check bool) "same seed, same summary" true (a = b);
  let c = Crash_monkey.run ~cycles:20 ~seed:100 () in
  Alcotest.(check bool) "different seed, different schedule" true
    (a.Crash_monkey.records_kept <> c.Crash_monkey.records_kept
     || a.Crash_monkey.records_dropped <> c.Crash_monkey.records_dropped
     || a.Crash_monkey.crashes <> c.Crash_monkey.crashes)

let suite =
  [ Alcotest.test_case "no violations over 60 cycles" `Quick test_no_violations;
    Alcotest.test_case "all damage modes exercised" `Quick test_all_damage_modes_exercised;
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
  ]

(* Edge cases of the engine: order constraints end to end, entanglement
   chains and pathologies, reads with constraints, mixed write batches,
   cancellation flows, and Expose reads across partitions. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module P = Quantum.Datalog_parser
module Flights = Workload.Flights
module Travel = Workload.Travel
open Logic

let geometry rows flights = { Flights.flights; rows_per_flight = rows; dest = "LA" }

let fresh_qdb ?config ?(rows = 2) ?(flights = 1) () =
  Qdb.create ?config (Flights.fresh_store (geometry rows flights))

let user name partner flight = { Travel.name; partner; flight }

let test_order_constraint_txn () =
  let qdb = fresh_qdb ~rows:2 () in
  (* Hard constraint: a seat in the first row (s < 3). *)
  let txn =
    P.parse_txn ~label:"fr"
      {|-Available(f, s), +Bookings("fr", f, s) :-1 Available(f, s), s < 3|}
  in
  (match Qdb.submit qdb txn with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  (match Flights.booking_of (Qdb.db qdb) "fr" with
   | Some (_, s) -> Alcotest.(check bool) "front row" true (s < 3)
   | None -> Alcotest.fail "not booked");
  (* Fill the front row; a fourth front-row request must be refused while
     back-row requests still pass. *)
  List.iter
    (fun n ->
      ignore
        (Qdb.submit qdb
           (P.parse_txn ~label:n
              (Printf.sprintf
                 {|-Available(f, s), +Bookings("%s", f, s) :-1 Available(f, s), s <= 2|} n))))
    [ "fr2"; "fr3" ];
  (match
     Qdb.submit qdb
       (P.parse_txn ~label:"fr4"
          {|-Available(f, s), +Bookings("fr4", f, s) :-1 Available(f, s), s < 3|})
   with
   | Qdb.Rejected _ | Qdb.Overloaded _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "front row is logically full");
  (match
     Qdb.submit qdb
       (P.parse_txn ~label:"back"
          {|-Available(f, s), +Bookings("back", f, s) :-1 Available(f, s), s >= 3|})
   with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "back row should fit: %s" r)

let test_optional_order_constraint () =
  let qdb = fresh_qdb ~rows:2 () in
  (* OPTIONAL preference for the front row, honoured while possible. *)
  let prefer_front n =
    P.parse_txn ~label:n
      (Printf.sprintf
         {|-Available(f, s), +Bookings("%s", f, s) :-1 Available(f, s), ?{ s < 3 }|} n)
  in
  (match Qdb.submit qdb (prefer_front "a") with
   | Qdb.Committed id ->
     ignore (Qdb.ground qdb id);
     (match Flights.booking_of (Qdb.db qdb) "a" with
      | Some (_, s) -> Alcotest.(check bool) "preference honoured" true (s < 3)
      | None -> Alcotest.fail "not booked")
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  (* Take the rest of the front row externally; the preference must yield,
     not fail the transaction. *)
  List.iter
    (fun s ->
      ignore
        (Qdb.write qdb [ Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int s ]) ]))
    [ 1; 2 ];
  (match Qdb.submit qdb (prefer_front "b") with
   | Qdb.Committed id ->
     ignore (Qdb.ground qdb id);
     (match Flights.booking_of (Qdb.db qdb) "b" with
      | Some (_, s) -> Alcotest.(check bool) "degraded to back row" true (s >= 3)
      | None -> Alcotest.fail "not booked")
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "optional must not reject: %s" r)

let test_entanglement_chain () =
  (* a waits for b; b itself waits for c.  b's arrival IS a's partner
     arriving, so a and b ground together immediately (Section 5.1 —
     deferral ends when the partner is in the system), with b's own
     c-preference necessarily unsatisfied. *)
  let qdb = fresh_qdb ~rows:2 () in
  ignore (Qdb.submit qdb (Travel.entangled_txn (user "a" "b" 0)));
  Alcotest.(check int) "a waits" 1 (Qdb.pending_count qdb);
  ignore (Qdb.submit qdb (Travel.entangled_txn (user "b" "c" 0)));
  Alcotest.(check int) "a and b grounded together" 0 (Qdb.pending_count qdb);
  ignore (Qdb.submit qdb (Travel.plain_txn (user "c" "-" 0)));
  ignore (Qdb.ground_all qdb);
  let db = Qdb.db qdb in
  let seat n = Option.map snd (Flights.booking_of db n) in
  (match seat "a", seat "b", seat "c" with
   | Some sa, Some sb, Some _ ->
     Alcotest.(check bool) "a adjacent b" true (Flights.seats_adjacent db sa sb)
   | _ -> Alcotest.fail "all three should be booked")

let test_partner_never_arrives () =
  let qdb = fresh_qdb ~rows:1 () in
  ignore (Qdb.submit qdb (Travel.entangled_txn (user "lonely" "ghost" 0)));
  Alcotest.(check int) "still pending" 1 (Qdb.pending_count qdb);
  (* The seat is still guaranteed: a read collapses it without a partner. *)
  let answers = Qdb.read qdb (Travel.seat_query (user "lonely" "ghost" 0)) in
  Alcotest.(check int) "one seat" 1 (List.length answers);
  Alcotest.(check int) "grounded" 0 (Qdb.pending_count qdb)

let test_read_with_constraint () =
  let qdb = fresh_qdb ~rows:2 () in
  List.iter
    (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0))))
    [ "a"; "b" ];
  ignore (Qdb.ground_all qdb);
  (* Read only back-row bookings. *)
  let q = P.parse_query {|(u, s) :- Bookings(u, f, s), s >= 3|} in
  let back = Qdb.read qdb q in
  List.iter
    (fun t ->
      match Tuple.to_list t with
      | [ _; Value.Int s ] -> Alcotest.(check bool) "back row only" true (s >= 3)
      | _ -> Alcotest.fail "bad tuple")
    back

let test_cancellation_flow () =
  (* Book, ground, cancel via a resource transaction, book again on the
     freed seat. *)
  let qdb = fresh_qdb ~rows:1 () in
  List.iter
    (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0))))
    [ "a"; "b"; "c" ];
  ignore (Qdb.ground_all qdb);
  (match
     Qdb.submit qdb
       (P.parse_txn ~label:"a-cancel"
          {|-Bookings("a", f, s), +Available(f, s) :-1 Bookings("a", f, s)|})
   with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "cancel rejected: %s" r);
  (* The freed seat is usable by a new booking even while the cancel is
     still pending (Lemma 3.4's insert case). *)
  (match Qdb.submit qdb (Travel.plain_txn (user "d" "-" 0)) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rebooking rejected: %s" r);
  ignore (Qdb.ground_all qdb);
  Alcotest.(check bool) "a gone" true (Flights.booking_of (Qdb.db qdb) "a" = None);
  Alcotest.(check bool) "d seated" true (Flights.booking_of (Qdb.db qdb) "d" <> None);
  Alcotest.(check int) "plane exactly full" 0
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Available"))

let test_mixed_write_batch () =
  let qdb = fresh_qdb ~rows:1 () in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-" 0)));
  (* An external swap: retire seat 0, open seat 77 — one atomic batch. *)
  let swap =
    [ Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int 0 ]);
      Database.Insert ("Available", Tuple.of_list [ Value.Int 0; Value.Int 77 ]);
    ]
  in
  Alcotest.(check bool) "swap accepted" true (Qdb.write qdb swap = Ok ());
  (* Removing two of the three remaining seats leaves one for the pending
     booking; removing the last must be refused. *)
  let remove s =
    Qdb.write qdb [ Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int s ]) ]
  in
  Alcotest.(check bool) "remove 1" true (remove 1 = Ok ());
  Alcotest.(check bool) "remove 2" true (remove 2 = Ok ());
  Alcotest.(check bool) "last seat protected" true (Result.is_error (remove 77));
  ignore (Qdb.ground_all qdb);
  (match Flights.booking_of (Qdb.db qdb) "a" with
   | Some (_, 77) -> ()
   | Some (_, s) -> Alcotest.failf "expected seat 77, got %d" s
   | None -> Alcotest.fail "a should be booked")

let test_expose_across_partitions () =
  let config = { Qdb.default_config with read_policy = Qdb.Expose } in
  let qdb = fresh_qdb ~config ~rows:1 ~flights:2 () in
  (* One flight-agnostic pending booking: possible seats span both
     flights. *)
  let f = Term.V (Term.fresh_var "f") and s = Term.V (Term.fresh_var "s") in
  let any =
    Rtxn.make ~label:"w"
      ~hard:[ Atom.make "Available" [ f; s ] ]
      ~updates:
        [ Rtxn.Del (Atom.make "Available" [ f; s ]);
          Rtxn.Ins (Atom.make "Bookings" [ Term.str "w"; f; s ]) ]
      ()
  in
  ignore (Qdb.submit qdb any);
  let answers = Qdb.read qdb (Travel.seat_query (user "w" "-" 0)) in
  Alcotest.(check int) "six possible seats across two flights" 6 (List.length answers);
  Alcotest.(check int) "nothing fixed" 1 (Qdb.pending_count qdb)

let test_group_with_order_preference () =
  (* Group booking constrained to the front row via hard Lt. *)
  let qdb = fresh_qdb ~rows:2 () in
  let s1 = Term.V (Term.fresh_var "s1") and s2 = Term.V (Term.fresh_var "s2") in
  let txn =
    Rtxn.make ~label:"duo"
      ~hard:
        [ Atom.make "Available" [ Term.int 0; s1 ]; Atom.make "Available" [ Term.int 0; s2 ] ]
      ~constraints:[ Formula.lt s1 s2; Formula.lt s2 (Term.int 3) ]
      ~updates:
        [ Rtxn.Del (Atom.make "Available" [ Term.int 0; s1 ]);
          Rtxn.Del (Atom.make "Available" [ Term.int 0; s2 ]);
          Rtxn.Ins (Atom.make "Bookings" [ Term.str "d1"; Term.int 0; s1 ]);
          Rtxn.Ins (Atom.make "Bookings" [ Term.str "d2"; Term.int 0; s2 ]);
        ]
      ()
  in
  (match Qdb.submit qdb txn with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  (match Flights.booking_of (Qdb.db qdb) "d1", Flights.booking_of (Qdb.db qdb) "d2" with
   | Some (_, a), Some (_, b) ->
     Alcotest.(check bool) "ordered" true (a < b);
     Alcotest.(check bool) "front row" true (b < 3)
   | _ -> Alcotest.fail "both should be booked")

let test_per_read_policy_override () =
  (* Config says Collapse, but a Peek-override read must fix nothing. *)
  let qdb = fresh_qdb ~rows:2 () in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-" 0)));
  let q = Travel.seat_query (user "a" "-" 0) in
  ignore (Qdb.read ~policy:Qdb.Peek qdb q);
  Alcotest.(check int) "peek fixed nothing" 1 (Qdb.pending_count qdb);
  ignore (Qdb.read qdb q);
  Alcotest.(check int) "default collapse fixed it" 0 (Qdb.pending_count qdb)

let suite =
  [ Alcotest.test_case "hard order constraint" `Quick test_order_constraint_txn;
    Alcotest.test_case "optional order constraint" `Quick test_optional_order_constraint;
    Alcotest.test_case "entanglement chain" `Quick test_entanglement_chain;
    Alcotest.test_case "partner never arrives" `Quick test_partner_never_arrives;
    Alcotest.test_case "read with constraint" `Quick test_read_with_constraint;
    Alcotest.test_case "cancellation flow" `Quick test_cancellation_flow;
    Alcotest.test_case "mixed write batch" `Quick test_mixed_write_batch;
    Alcotest.test_case "expose across partitions" `Quick test_expose_across_partitions;
    Alcotest.test_case "group with order preference" `Quick test_group_with_order_preference;
    Alcotest.test_case "per-read policy override" `Quick test_per_read_policy_override;
  ]

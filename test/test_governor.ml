(* Tests for the admission resource governor and the engine's behaviour
   under pressure: the Overloaded-vs-Rejected distinction (a budget
   blowup must never masquerade as a semantic rejection), the escalation
   ladder and its counters, deadline budgets, engine-level fault
   injection (poisoned refills, aborted write rechecks), and the chaos
   harness's survival/determinism contract. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Qdb = Quantum.Qdb
module Governor = Quantum.Governor
module Metrics = Quantum.Metrics
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel
module Fault = Workload.Fault
module Chaos = Workload.Chaos

let geometry rows = { Flights.flights = 1; rows_per_flight = rows; dest = "LA" }

let fresh_qdb ?config ?pool ?(rows = 2) () =
  let store = Flights.fresh_store (geometry rows) in
  Qdb.create ?config ?pool store

let user name = { Travel.name; partner = "-"; flight = 0 }
let submit ?governor qdb name = Qdb.submit ?governor qdb (Travel.plain_txn (user name))

(* Fill the one flight to seat capacity so the next admission's composed
   body is pigeonhole-unsatisfiable — the expensive check the squeeze
   tests lean on. *)
let fill_to_capacity qdb rows =
  List.iteri
    (fun i _ ->
      match submit qdb (Printf.sprintf "filler%d" i) with
      | Qdb.Committed _ -> ()
      | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "filler%d refused: %s" i r)
    (List.init (3 * rows) Fun.id)

let squeeze = Governor.make ~node_budget:1 ~max_retries:0 ~escalation:1 ()

(* -- Overloaded vs Rejected (the regression this PR pins) ------------------- *)

(* A budget-starved admission must come back [Overloaded] — previously
   [Too_many_nodes] was swallowed as unsatisfiable and surfaced as a
   plain rejection, poisoning the accept/reject statistics. *)
let test_overloaded_not_rejected () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  let before = Qdb.pending_count qdb in
  (match submit ~governor:squeeze qdb "late" with
   | Qdb.Overloaded reason ->
     Alcotest.(check bool) "reason mentions the budget" true
       (String.length reason > 0)
   | Qdb.Rejected r -> Alcotest.failf "budget exhaustion misreported as Rejected: %s" r
   | Qdb.Committed _ -> Alcotest.fail "overbooked under a 1-node budget");
  let m = Qdb.metrics qdb in
  Alcotest.(check int) "metrics.overloaded" 1 m.Metrics.overloaded;
  Alcotest.(check int) "metrics.rejected untouched" 0 m.Metrics.rejected;
  Alcotest.(check bool) "exhaustions counted" true (m.Metrics.governor_exhaustions > 0);
  (* Overloaded is side-effect-free: partitions, caches, WAL untouched. *)
  Alcotest.(check int) "pending unchanged" before (Qdb.pending_count qdb);
  Alcotest.(check bool) "invariant holds" true (Qdb.invariant_holds qdb);
  (* The same transaction under the default governor gets the true
     verdict — here a genuine (pigeonhole) rejection. *)
  (match submit qdb "late" with
   | Qdb.Rejected _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "overbooked"
   | Qdb.Overloaded r -> Alcotest.failf "default governor overloaded: %s" r);
  Alcotest.(check int) "real rejection counted" 1 (Qdb.metrics qdb).Metrics.rejected

(* An under-capacity admission still commits under a tiny budget: the
   witness-seeded incremental check needs almost no search. *)
let test_squeeze_spares_cheap_admissions () =
  let qdb = fresh_qdb ~rows:2 () in
  (match submit ~governor:squeeze qdb "early" with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "cheap admission refused: %s" r);
  Alcotest.(check int) "no overload" 0 (Qdb.metrics qdb).Metrics.overloaded

(* -- The degradation ladder ------------------------------------------------- *)

(* Base budget too small, escalation generous: the ladder's retries and
   the degraded full solve must rescue the admission and say so in the
   counters — the structured alternative to the old raw exception. *)
let test_ladder_escalates_to_verdict () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  let gov = Governor.make ~node_budget:1 ~max_retries:2 ~escalation:10_000 () in
  (match submit ~governor:gov qdb "late" with
   | Qdb.Rejected _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "overbooked"
   | Qdb.Overloaded r -> Alcotest.failf "escalated ladder still overloaded: %s" r);
  let m = Qdb.metrics qdb in
  Alcotest.(check bool) "retries counted" true (m.Metrics.governor_retries > 0);
  Alcotest.(check int) "no overload outcome" 0 m.Metrics.overloaded

let test_ladder_degraded_full_solve () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  (* No retries: the only rung past the first attempt is the degraded
     full recompose, which the big escalation makes sufficient. *)
  let gov = Governor.make ~node_budget:1 ~max_retries:0 ~escalation:1_000_000 () in
  (match submit ~governor:gov qdb "late" with
   | Qdb.Rejected _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "overbooked"
   | Qdb.Overloaded r -> Alcotest.failf "degraded full solve still overloaded: %s" r);
  let m = Qdb.metrics qdb in
  Alcotest.(check bool) "degraded full solve counted" true
    (m.Metrics.governor_degraded_full_solve > 0)

(* -- Deadline budget -------------------------------------------------------- *)

let test_deadline_overloads () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  (* A 1 ns deadline has always expired by the first stride check; the
     contended unsatisfiability proof cannot finish under it. *)
  let gov = Governor.make ~deadline_ns:1L ~max_retries:0 () in
  (match submit ~governor:gov qdb "late" with
   | Qdb.Overloaded reason ->
     Alcotest.(check bool) "deadline reason" true
       (String.length reason > 0)
   | Qdb.Rejected _ -> Alcotest.fail "deadline expiry misreported as Rejected"
   | Qdb.Committed _ -> Alcotest.fail "overbooked");
  Alcotest.(check bool) "invariant holds" true (Qdb.invariant_holds qdb)

(* -- Governor arithmetic ---------------------------------------------------- *)

let test_node_budget_escalation_saturates () =
  let gov = Governor.make ~node_budget:100 ~escalation:8 () in
  let charge = Governor.arm gov in
  let budget retry = Governor.node_budget charge ~default_limit:2_000_000 ~retry in
  Alcotest.(check int) "rung 0" 100 (budget 0);
  Alcotest.(check int) "rung 1" 800 (budget 1);
  Alcotest.(check int) "rung 2" 6_400 (budget 2);
  Alcotest.(check bool) "deep rungs saturate positive" true (budget 40 > 0);
  (* No explicit budget: inherit the engine's node limit. *)
  let inherit_charge = Governor.arm Governor.default in
  Alcotest.(check int) "default inherits engine limit" 2_000_000
    (Governor.node_budget inherit_charge ~default_limit:2_000_000 ~retry:0)

let test_backoff_is_bounded () =
  (* A pathological base backoff must be capped (50 ms) — and a zero
     base (the default) must not sleep at all. *)
  let charge = Governor.arm (Governor.make ~backoff_ns:10_000_000_000L ()) in
  let t0 = Obs.Mclock.now_ns () in
  Governor.backoff charge ~salt:7 ~retry:3;
  let slept_ms = Int64.to_float (Int64.sub (Obs.Mclock.now_ns ()) t0) /. 1e6 in
  Alcotest.(check bool) "capped near 50ms" true (slept_ms < 500.);
  let free = Governor.arm Governor.default in
  let t1 = Obs.Mclock.now_ns () in
  Governor.backoff free ~salt:7 ~retry:3;
  let zero_ms = Int64.to_float (Int64.sub (Obs.Mclock.now_ns ()) t1) /. 1e6 in
  Alcotest.(check bool) "zero base does not sleep" true (zero_ms < 5.)

(* -- Telemetry exposure ----------------------------------------------------- *)

let test_registry_exposes_governor_counters () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  ignore (submit ~governor:squeeze qdb "late");
  let reg = Qdb.registry qdb in
  let counter name =
    match Obs.Registry.find reg name with
    | Some (Obs.Registry.Counter n) -> n
    | _ -> Alcotest.failf "registry lacks counter %s" name
  in
  Alcotest.(check int) "qdb.admission.overloaded" 1 (counter "qdb.admission.overloaded");
  Alcotest.(check bool) "qdb.governor.exhaustions" true
    (counter "qdb.governor.exhaustions" > 0);
  Alcotest.(check bool) "qdb.governor.degraded_full_solve" true
    (counter "qdb.governor.degraded_full_solve" >= 0);
  Alcotest.(check bool) "qdb.governor.retries" true (counter "qdb.governor.retries" >= 0);
  (* The per-outcome latency split and the counters survive both text
     exporters. *)
  let prom = Obs.Export.prometheus reg in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus overloaded counter" true
    (contains prom "qdb_admission_overloaded");
  Alcotest.(check bool) "prometheus overload latency" true
    (contains prom "qdb_submit_overload_latency");
  let json = Obs.Export.json_snapshot_string reg in
  Alcotest.(check bool) "json overloaded counter" true
    (contains json "qdb.admission.overloaded")

(* -- Engine-level fault injection ------------------------------------------- *)

(* A refill job crashing mid-fan-out: the batch is abandoned wholesale,
   the failure counted, and the engine keeps admitting. *)
let test_poisoned_refill_absorbed () =
  let config = { Qdb.default_config with Qdb.cache_capacity = 3 } in
  let qdb = fresh_qdb ~config ~rows:2 () in
  Qdb.set_fault_injector qdb (fun ~kind ~fanout:_ ~job:_ ->
      if kind = "refill" then raise (Fault.Injected "poisoned refill"));
  (match submit qdb "a" with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "submit under poison: %s" r);
  let m = Qdb.metrics qdb in
  Alcotest.(check bool) "refill failures counted" true (m.Metrics.refill_failures > 0);
  Alcotest.(check bool) "invariant holds" true (Qdb.invariant_holds qdb);
  Qdb.clear_fault_injector qdb;
  (match submit qdb "b" with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "engine unusable after poison: %s" r);
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "both grounded" 2
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

(* A recheck job crashing mid-revalidation: the blind write must be
   rolled back and refused conservatively, leaving no half-applied ops. *)
let test_poisoned_recheck_rolls_back () =
  let qdb = fresh_qdb ~rows:2 () in
  (match submit qdb "a" with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "setup: %s" r);
  let seats_before =
    Relational.Table.cardinality (Database.table (Qdb.db qdb) "Available")
  in
  Qdb.set_fault_injector qdb (fun ~kind ~fanout:_ ~job:_ ->
      if kind = "recheck" then raise (Fault.Injected "poisoned recheck"));
  let op = Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int 0 ]) in
  (match Qdb.write qdb [ op ] with
   | Error reason ->
     Alcotest.(check bool) "refusal names the abort" true
       (String.length reason >= 18 && String.sub reason 0 18 = "write revalidation")
   | Ok () -> Alcotest.fail "poisoned revalidation accepted a write");
  Alcotest.(check int) "tentative delete rolled back" seats_before
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Available"));
  Alcotest.(check int) "write counted as rejected" 1
    (Qdb.metrics qdb).Metrics.writes_rejected;
  Alcotest.(check bool) "invariant holds" true (Qdb.invariant_holds qdb);
  (* Same write sails through once the fault clears. *)
  Qdb.clear_fault_injector qdb;
  (match Qdb.write qdb [ op ] with
   | Ok () -> ()
   | Error r -> Alcotest.failf "clean write refused: %s" r)

(* -- Witness invalidation and CHOOSE exhaustion ----------------------------- *)

(* A blind write that kills every seat a pending CHOOSE could take must
   be refused (it would empty the possible-world set), with the
   invalidation visible in the cache stats; the pending set stays whole. *)
let test_witness_invalidation_refused () =
  let qdb = fresh_qdb ~rows:1 () in
  List.iter (fun n -> ignore (submit qdb n)) [ "a"; "b"; "c" ];
  let pending_before = Qdb.pending_count qdb in
  let delete_seat s =
    Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int s ])
  in
  (match Qdb.write qdb [ delete_seat 0 ] with
   | Error reason ->
     Alcotest.(check bool) "conflict reason" true (String.length reason > 0)
   | Ok () -> Alcotest.fail "write emptied a pending CHOOSE's world set");
  Alcotest.(check int) "pending untouched" pending_before (Qdb.pending_count qdb);
  Alcotest.(check bool) "invariant holds" true (Qdb.invariant_holds qdb);
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "all three still ground" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

(* CHOOSE over an exhausted domain: no seats at all — immediate, genuine
   rejection with the counter and reason to match, state untouched. *)
let test_choose_exhaustion_rejects () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  ignore (Qdb.ground_all qdb);
  (* Every seat is now booked and gone from Available. *)
  (match submit qdb "late" with
   | Qdb.Rejected reason ->
     Alcotest.(check bool) "has a reason" true (String.length reason > 0)
   | Qdb.Committed _ -> Alcotest.fail "booked a seat that does not exist"
   | Qdb.Overloaded r -> Alcotest.failf "trivial unsat reported overloaded: %s" r);
  let m = Qdb.metrics qdb in
  Alcotest.(check int) "qdb.rejected" 1 m.Metrics.rejected;
  Alcotest.(check int) "no overload" 0 m.Metrics.overloaded;
  Alcotest.(check int) "nothing pending" 0 (Qdb.pending_count qdb);
  Alcotest.(check bool) "invariant holds" true (Qdb.invariant_holds qdb)

(* -- Latency split ---------------------------------------------------------- *)

let test_latency_split_by_outcome () =
  let qdb = fresh_qdb ~rows:1 () in
  fill_to_capacity qdb 1;
  ignore (submit qdb "real-reject");
  ignore (submit ~governor:squeeze qdb "starved");
  let m = Qdb.metrics qdb in
  let count h = Obs.Histogram.count h in
  Alcotest.(check int) "accepts recorded" 3 (count m.Metrics.accept_latency);
  Alcotest.(check int) "rejects recorded" 1 (count m.Metrics.reject_latency);
  Alcotest.(check int) "overloads recorded" 1 (count m.Metrics.overload_latency);
  Alcotest.(check int) "total = split sum"
    (count m.Metrics.submit_latency)
    (count m.Metrics.accept_latency + count m.Metrics.reject_latency
     + count m.Metrics.overload_latency)

(* -- Chaos harness ---------------------------------------------------------- *)

let test_chaos_cycles_clean () =
  let s = Chaos.run ~cycles:4 ~seed:97 () in
  (* 3 per cycle: 1-vs-2 domains, 1-vs-4 domains, inline-vs-actor. *)
  Alcotest.(check int) "determinism checks ran" 12 s.Chaos.determinism_checks;
  Alcotest.(check bool) "submissions happened" true (s.Chaos.submissions > 0);
  (match s.Chaos.violations with
   | [] -> ()
   | (cycle, v) :: _ -> Alcotest.failf "chaos violation in cycle %d: %s" cycle v);
  (* The same seed replays to the same summary. *)
  let s' = Chaos.run ~cycles:4 ~seed:97 () in
  Alcotest.(check bool) "summary replays identically" true (s = s')

let test_chaos_cycle_deterministic_across_domains () =
  let pool = Par.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let a = Chaos.run_cycle ~seed:424242 () in
      let b = Chaos.run_cycle ~pool ~seed:424242 () in
      Alcotest.(check (list string)) "event traces identical" a.Chaos.events b.Chaos.events;
      Alcotest.(check (list string)) "violations identical (and empty)" [] a.Chaos.violations)

let suite =
  [ Alcotest.test_case "overloaded is not rejected" `Quick test_overloaded_not_rejected;
    Alcotest.test_case "squeeze spares cheap admissions" `Quick
      test_squeeze_spares_cheap_admissions;
    Alcotest.test_case "ladder escalates to a verdict" `Quick test_ladder_escalates_to_verdict;
    Alcotest.test_case "ladder degraded full solve" `Quick test_ladder_degraded_full_solve;
    Alcotest.test_case "deadline expiry overloads" `Quick test_deadline_overloads;
    Alcotest.test_case "node budget escalation saturates" `Quick
      test_node_budget_escalation_saturates;
    Alcotest.test_case "backoff bounded and zero-default" `Quick test_backoff_is_bounded;
    Alcotest.test_case "registry exposes governor counters" `Quick
      test_registry_exposes_governor_counters;
    Alcotest.test_case "poisoned refill absorbed" `Quick test_poisoned_refill_absorbed;
    Alcotest.test_case "poisoned recheck rolls back" `Quick test_poisoned_recheck_rolls_back;
    Alcotest.test_case "witness invalidation refused" `Quick test_witness_invalidation_refused;
    Alcotest.test_case "choose exhaustion rejects" `Quick test_choose_exhaustion_rejects;
    Alcotest.test_case "latency split by outcome" `Quick test_latency_split_by_outcome;
    Alcotest.test_case "chaos: short run clean + replayable" `Slow test_chaos_cycles_clean;
    Alcotest.test_case "chaos: cycle identical with and without pool" `Slow
      test_chaos_cycle_deterministic_across_domains;
  ]

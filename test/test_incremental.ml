(* Tests for the incremental-admission path: randomized equivalence of
   delta composition with from-scratch recomposition, outcome identity of
   the [incremental] ablation (alone and under a domain pool), formula
   interning, table versioning for the estimate cache, and backtrack
   accounting in the all-solutions enumerator. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
module Table = Relational.Table
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel
module Prng = Workload.Prng
open Logic

let geometry = { Flights.flights = 2; rows_per_flight = 2; dest = "LA" }
let user name flight = { Travel.name; partner = "-"; flight }

(* -- Randomized workload traces ------------------------------------------- *)

type op =
  | Submit of Travel.user
  | Ground_nth of int  (** ground the n-th (mod size) pending transaction *)
  | Ground_all

let gen_trace rng len =
  List.init len (fun i ->
      let r = Prng.int rng 100 in
      if r < 70 then Submit (user (Printf.sprintf "u%d" i) (Prng.int rng geometry.Flights.flights))
      else if r < 90 then Ground_nth (Prng.int rng 8)
      else Ground_all)

(* Replay a trace on a fresh engine; the outcome string is a full
   observable transcript (commit/reject per submit, grounding counts), so
   equality of transcripts is outcome identity. *)
let apply_trace ?pool ~incremental trace =
  let store = Flights.fresh_store geometry in
  let config = { Qdb.default_config with Qdb.k = 6; cache_capacity = 2; incremental } in
  let qdb = Qdb.create ~config ?pool store in
  let outcomes =
    List.map
      (fun op ->
        match op with
        | Submit u ->
          (match Qdb.submit qdb (Travel.plain_txn u) with
           | Qdb.Committed id -> Printf.sprintf "c%d" id
           | Qdb.Rejected _ | Qdb.Overloaded _ -> "r")
        | Ground_nth n ->
          (match Qdb.pending qdb with
           | [] -> "g-"
           | ps ->
             let txn = List.nth ps (n mod List.length ps) in
             Printf.sprintf "g%d" (List.length (Qdb.ground qdb txn.Rtxn.id)))
        | Ground_all -> Printf.sprintf "G%d" (List.length (Qdb.ground_all qdb)))
      trace
  in
  (qdb, outcomes)

(* 200 seeded traces: after each, every partition's incrementally
   composed body must agree with a from-scratch recomposition and every
   cached witness must still seed it ([Qdb.invariant_holds] checks all
   three since the incremental rework). *)
let test_trace_equivalence () =
  for seed = 1 to 200 do
    let trace = gen_trace (Prng.create seed) 12 in
    let qdb, _ = apply_trace ~incremental:true trace in
    Alcotest.(check bool)
      (Printf.sprintf "incremental body equivalent (seed %d)" seed)
      true (Qdb.invariant_holds qdb)
  done

(* Seeded-then-fallback admission must accept and reject exactly like the
   from-scratch ablation, and a 2-domain pool must not change either. *)
let test_ablation_outcome_identity () =
  let pool = Par.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      for seed = 201 to 240 do
        let trace = gen_trace (Prng.create seed) 12 in
        let _, inc = apply_trace ~incremental:true trace in
        let _, scratch = apply_trace ~incremental:false trace in
        let _, pooled = apply_trace ~pool ~incremental:true trace in
        Alcotest.(check (list string))
          (Printf.sprintf "incremental = from-scratch (seed %d)" seed)
          scratch inc;
        Alcotest.(check (list string))
          (Printf.sprintf "2-domain pool identical (seed %d)" seed)
          inc pooled
      done)

(* Rejections must leave the chunk cache untouched: fill a 3-seat flight,
   bounce a fourth booking off it, and re-check equivalence. *)
let test_rejection_leaves_body () =
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 1; dest = "LA" } in
  let qdb = Qdb.create ~config:{ Qdb.default_config with Qdb.k = 10 } store in
  List.iter
    (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n 0))))
    [ "a"; "b"; "c" ];
  (match Qdb.submit qdb (Travel.plain_txn (user "d" 0)) with
   | Qdb.Rejected _ | Qdb.Overloaded _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "4th booking on 3 seats must be rejected");
  Alcotest.(check bool) "body untouched by rejection" true (Qdb.invariant_holds qdb);
  Alcotest.(check int) "clauses still the committed three's"
    (Qdb.composed_clause_total qdb)
    (let store' = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 1; dest = "LA" } in
     let qdb' = Qdb.create ~config:{ Qdb.default_config with Qdb.k = 10 } store' in
     List.iter
       (fun n -> ignore (Qdb.submit qdb' (Travel.plain_txn (user n 0))))
       [ "a"; "b"; "c" ];
     Qdb.composed_clause_total qdb')

(* Crash-monkey under the incremental default: recovery rebuilds chunk
   caches; any disagreement with recomposition shows up as a violation. *)
let test_crash_monkey_incremental () =
  let summary = Workload.Crash_monkey.run ~cycles:40 ~seed:23 () in
  Alcotest.(check (list (pair int string)))
    "no recovery violations" [] summary.Workload.Crash_monkey.violations

(* -- Observability ---------------------------------------------------------- *)

let test_composed_clauses_gauge () =
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  List.iter (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n 0)))) [ "a"; "b" ];
  let reg = Qdb.registry qdb in
  let items = Obs.Registry.items reg in
  let gauge name =
    List.find_map
      (function
        | n, Obs.Registry.Gauge v when n = name -> Some v
        | _ -> None)
      items
  in
  (match gauge "qdb.partition.composed_clauses" with
   | Some v ->
     Alcotest.(check int) "gauge matches accessor" (Qdb.composed_clause_total qdb)
       (int_of_float v)
   | None -> Alcotest.fail "qdb.partition.composed_clauses gauge missing");
  Alcotest.(check bool) "total is positive with pending txns" true
    (Qdb.composed_clause_total qdb > 0)

(* -- Interning and sharing -------------------------------------------------- *)

let test_intern_equivalence () =
  let v = Term.V (Term.fresh_var "x") and w = Term.V (Term.fresh_var "y") in
  let f =
    Formula.and_
      [ Formula.Atom (Atom.make "R" [ v; w ]);
        Formula.or_ [ Formula.Eq (v, Term.int 1); Formula.Neq (w, Term.int 2) ];
        Formula.Not_atom (Atom.make "S" [ w ]);
      ]
  in
  Alcotest.(check bool) "intern preserves structure" true (Formula.intern f = f);
  Alcotest.(check bool) "interning is idempotent and shares" true
    (Formula.intern f == Formula.intern f)

let test_apply_subst_sharing () =
  let v = Term.V (Term.fresh_var "x") in
  let f =
    Formula.and_
      [ Formula.Atom (Atom.make "R" [ v; Term.int 3 ]); Formula.Neq (v, Term.int 1) ]
  in
  Alcotest.(check bool) "no-op substitution returns the formula itself" true
    (Formula.apply_subst Subst.empty f == f)

(* -- Table versioning (estimate-cache invalidation) ------------------------- *)

let test_table_version () =
  let db = Database.create () in
  let t =
    Database.create_table db
      (Schema.make ~name:"V"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ~key:[ "a" ] ())
  in
  Alcotest.(check int) "fresh table at version 0" 0 (Table.version t);
  ignore (Table.insert t (Tuple.of_list [ Value.Int 1; Value.Int 10 ]));
  let v1 = Table.version t in
  Alcotest.(check bool) "insert bumps" true (v1 > 0);
  ignore (Table.delete t (Tuple.of_list [ Value.Int 1; Value.Int 10 ]));
  Alcotest.(check bool) "delete bumps" true (Table.version t > v1)

(* -- Solutions backtrack accounting ----------------------------------------- *)

(* On an exhaustive (unsatisfiable) search both entry points explore the
   same tree, so the dead ends they count must agree. *)
let test_solutions_backtracks () =
  let db = Database.create () in
  let r =
    Database.create_table db
      (Schema.make ~name:"R"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ())
  in
  List.iter
    (fun (a, b) -> ignore (Table.insert r (Tuple.of_list [ Value.Int a; Value.Int b ])))
    [ (1, 2); (2, 3); (3, 4) ];
  let x = Term.V (Term.fresh_var "x") and y = Term.V (Term.fresh_var "y") in
  (* R(x,y) ∧ R(y,x): no symmetric pair exists, so every binding of the
     first atom dead-ends in the second. *)
  let unsat =
    Formula.and_
      [ Formula.Atom (Atom.make "R" [ x; y ]); Formula.Atom (Atom.make "R" [ y; x ]) ]
  in
  let s1 = Solver.Backtrack.fresh_stats () in
  Alcotest.(check bool) "unsat via solve" false
    (Solver.Backtrack.satisfiable ~stats:s1 db unsat);
  let s2 = Solver.Backtrack.fresh_stats () in
  Alcotest.(check (list pass)) "no solutions" []
    (Solver.Backtrack.solutions ~stats:s2 db unsat);
  Alcotest.(check bool) "solutions counts dead ends" true
    (s2.Solver.Backtrack.backtracks > 0);
  Alcotest.(check int) "same dead ends as solve on an exhaustive search"
    s1.Solver.Backtrack.backtracks s2.Solver.Backtrack.backtracks

let suite =
  [ Alcotest.test_case "200 traces: incremental ⇔ from-scratch bodies" `Slow
      test_trace_equivalence;
    Alcotest.test_case "ablation + 2-domain pool: identical outcomes" `Slow
      test_ablation_outcome_identity;
    Alcotest.test_case "rejection leaves the chunk cache untouched" `Quick
      test_rejection_leaves_body;
    Alcotest.test_case "crash monkey: zero violations incrementally" `Slow
      test_crash_monkey_incremental;
    Alcotest.test_case "composed_clauses gauge exported" `Quick test_composed_clauses_gauge;
    Alcotest.test_case "intern: structure-preserving, idempotent" `Quick
      test_intern_equivalence;
    Alcotest.test_case "apply_subst: no-op shares physically" `Quick test_apply_subst_sharing;
    Alcotest.test_case "table version bumps on mutation" `Quick test_table_version;
    Alcotest.test_case "solutions counts backtracks like solve" `Quick
      test_solutions_backtracks;
  ]

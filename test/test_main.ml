(* Aggregated test runner: one alcotest suite per subsystem. *)

let () =
  Alcotest.run "quantum_db"
    [ ("obs", Test_obs.suite);
      ("sexp", Test_sexp.suite);
      ("value+tuple", Test_value.suite);
      ("schema+table", Test_table.suite);
      ("database+wal+store", Test_database.suite);
      ("relalg", Test_relalg.suite);
      ("unify", Test_unify.suite);
      ("formula", Test_formula.suite);
      ("solver", Test_solver.suite);
      ("query", Test_query.suite);
      ("join-order+limit-one", Test_join_order.suite);
      ("sat", Test_sat.suite);
      ("sat-backend", Test_sat_backend.suite);
      ("compose", Test_compose.suite);
      ("qdb", Test_qdb.suite);
      ("possible-worlds", Test_possible_worlds.suite);
      ("recovery", Test_recovery.suite);
      ("wal-file", Test_wal_file.suite);
      ("crash-monkey", Test_crash_monkey.suite);
      ("partition", Test_partition.suite);
      ("engine-edge", Test_engine_edge.suite);
      ("incremental", Test_incremental.suite);
      ("session", Test_session.suite);
      ("parser", Test_parser.suite);
      ("sql-parser", Test_sql_parser.suite);
      ("calendar", Test_calendar.suite);
      ("cloud", Test_cloud.suite);
      ("workload", Test_workload.suite);
      ("net", Test_net.suite);
      ("par", Test_par.suite);
      ("actor", Test_actor.suite);
      ("governor", Test_governor.suite);
      ("profiler", Test_profiler.suite);
    ]

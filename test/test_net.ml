(* The network front door: wire-protocol totality (qcheck), loopback
   integration against the in-process engine, and backpressure
   isolation between sessions. *)

module Frame = Net.Frame
module Server = Net.Server
module Client = Net.Client
module Qdb = Quantum.Qdb
module Database = Relational.Database
module Travel = Workload.Travel
module Flights = Workload.Flights

(* -- Wire protocol: generators ---------------------------------------------- *)

let string_gen = QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 200))
let small_int_gen = QCheck.Gen.(0 -- 1_000_000)

let submission_gen =
  let open QCheck.Gen in
  let* label = string_gen in
  let* partner = opt string_gen in
  let* text = string_gen in
  return { Frame.label; partner; text }

let frame_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun s -> Frame.Hello s) string_gen;
      map (fun s -> Frame.Submit_datalog s) submission_gen;
      map (fun s -> Frame.Submit_sql s) submission_gen;
      map (fun s -> Frame.Query s) string_gen;
      map (fun n -> Frame.Ground n) small_int_gen;
      return Frame.Ground_all;
      map (fun s -> Frame.Ping s) string_gen;
      map (fun s -> Frame.Hello_ok s) string_gen;
      map (fun n -> Frame.Committed n) small_int_gen;
      map (fun s -> Frame.Rejected s) string_gen;
      map (fun s -> Frame.Overloaded s) string_gen;
      map (fun rows -> Frame.Rows rows) (list_size (0 -- 20) string_gen);
      map (fun n -> Frame.Grounded n) small_int_gen;
      map (fun s -> Frame.Pong s) string_gen;
      map (fun s -> Frame.Error_msg s) string_gen;
    ]

let frame_arb = QCheck.make ~print:Frame.to_string frame_gen

let decode_all ?max_payload s ~off ~len = Frame.decode ?max_payload (Bytes.of_string s) ~off ~len

(* -- Wire protocol: properties ---------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips every frame type" ~count:500 frame_arb
    (fun frame ->
      let wire = Frame.encode frame in
      match decode_all wire ~off:0 ~len:(String.length wire) with
      | Frame.Frame (decoded, consumed) ->
        decoded = frame && consumed = String.length wire
      | Frame.Need_more | Frame.Malformed _ -> false)

let prop_truncation_waits =
  (* Every strict prefix of a valid frame is a prefix of a valid frame:
     the decoder must ask for more bytes, never yield a frame or
     misclassify as garbage. *)
  QCheck.Test.make ~name:"strict prefixes decode as Need_more" ~count:300
    QCheck.(pair frame_arb (float_bound_inclusive 1.))
    (fun (frame, cut) ->
      let wire = Frame.encode frame in
      let len = String.length wire in
      let keep = min (len - 1) (int_of_float (cut *. float_of_int len)) in
      match decode_all wire ~off:0 ~len:keep with
      | Frame.Need_more -> true
      | Frame.Frame _ | Frame.Malformed _ -> false)

let prop_concatenation =
  QCheck.Test.make ~name:"back-to-back frames split at the right byte" ~count:300
    QCheck.(pair frame_arb frame_arb)
    (fun (a, b) ->
      let wire = Frame.encode a ^ Frame.encode b in
      match decode_all wire ~off:0 ~len:(String.length wire) with
      | Frame.Frame (decoded, consumed) ->
        decoded = a
        && consumed = String.length (Frame.encode a)
        && (match
              decode_all wire ~off:consumed ~len:(String.length wire - consumed)
            with
           | Frame.Frame (decoded_b, consumed_b) ->
             decoded_b = b && consumed + consumed_b = String.length wire
           | Frame.Need_more | Frame.Malformed _ -> false)
      | Frame.Need_more | Frame.Malformed _ -> false)

let prop_garbage_total =
  (* Arbitrary bytes never raise; any yielded frame re-encodes to at
     most the bytes consumed (the decoder invents nothing). *)
  QCheck.Test.make ~name:"decoder is total on garbage" ~count:1000
    QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.(char_range '\000' '\255'))
    (fun s ->
      match decode_all s ~off:0 ~len:(String.length s) with
      | Frame.Frame (frame, consumed) ->
        consumed <= String.length s && String.length (Frame.encode frame) = consumed
      | Frame.Need_more | Frame.Malformed _ -> true)

let header payload_len tag =
  let b = Bytes.create 5 in
  Bytes.set_int32_be b 0 (Int32.of_int payload_len);
  Bytes.set b 4 (Char.chr tag);
  Bytes.to_string b

let test_oversized_rejected () =
  (* A declared payload over the bound is malformed before any body
     bytes arrive — no allocation of attacker-chosen size. *)
  let h = header (Frame.default_max_payload + 1) 0x01 in
  (match decode_all h ~off:0 ~len:(String.length h) with
   | Frame.Malformed _ -> ()
   | Frame.Frame _ | Frame.Need_more -> Alcotest.fail "oversized length accepted");
  (* A tighter explicit bound applies too. *)
  let ping = Frame.encode (Frame.Ping (String.make 100 'x')) in
  match decode_all ~max_payload:50 ping ~off:0 ~len:(String.length ping) with
  | Frame.Malformed _ -> ()
  | Frame.Frame _ | Frame.Need_more -> Alcotest.fail "payload bound not enforced"

let test_zero_length_rejected () =
  let b = String.make 4 '\000' in
  match decode_all b ~off:0 ~len:4 with
  | Frame.Malformed _ -> ()
  | Frame.Frame _ | Frame.Need_more -> Alcotest.fail "zero payload length accepted"

let test_unknown_tag_rejected () =
  let h = header 1 0xEE in
  match decode_all h ~off:0 ~len:(String.length h) with
  | Frame.Malformed _ -> ()
  | Frame.Frame _ | Frame.Need_more -> Alcotest.fail "unknown tag accepted"

let test_trailing_bytes_rejected () =
  (* A Ground frame with one spare byte inside the declared payload:
     lengths that do not add up are a protocol violation, not slack. *)
  let body = Bytes.create 9 in
  Bytes.set_int64_be body 0 7L;
  Bytes.set body 8 'x';
  let wire = header (1 + 9) 0x05 ^ Bytes.to_string body in
  match decode_all wire ~off:0 ~len:(String.length wire) with
  | Frame.Malformed _ -> ()
  | Frame.Frame _ | Frame.Need_more -> Alcotest.fail "trailing payload bytes accepted"

let test_truncated_string_rejected () =
  (* An inner string length running past the payload end must be caught
     by bounds checking, not by reading into the next frame. *)
  let body = Bytes.create 4 in
  Bytes.set_int32_be body 0 1000l;
  let wire = header (1 + 4) 0x04 ^ Bytes.to_string body in
  match decode_all wire ~off:0 ~len:(String.length wire) with
  | Frame.Malformed _ -> ()
  | Frame.Frame _ | Frame.Need_more -> Alcotest.fail "overlong inner string accepted"

(* -- Loopback: concurrent sessions == direct engine ------------------------- *)

let geometry = { Flights.flights = 3; rows_per_flight = 2; dest = "LA" }
let pairs_per_flight = 3 (* 6 users per flight, 4 seats: rejections guaranteed *)

let users = Travel.make_users ~flights:geometry.Flights.flights ~pairs_per_flight

let submission_of u =
  (* Deterministic per-user mix of entangled and plain text forms. *)
  let entangled = Hashtbl.hash (u.Travel.name, "loopback") land 1 = 0 in
  let text = if entangled then Travel.entangled_txn_text u else Travel.plain_txn_text u in
  let partner = if entangled then Some u.Travel.partner else None in
  { Frame.label = u.Travel.name; partner; text }

let verdict_kind = function
  | Ok (Qdb.Committed _) -> "committed"
  | Ok (Qdb.Rejected _) -> "rejected"
  | Ok (Qdb.Overloaded _) -> "overloaded"
  | Error msg -> "error: " ^ msg

(* Ground truth: the same texts through the in-process engine, flight by
   flight (flights are independent partitions, so any cross-flight
   interleaving admits identically). *)
let direct_run () =
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  let verdicts =
    List.map
      (fun u ->
        let s = submission_of u in
        let txn =
          Quantum.Datalog_parser.parse_txn ~label:s.Frame.label
            ~trigger:
              (match s.Frame.partner with
               | Some p -> Quantum.Rtxn.On_partner p
               | None -> Quantum.Rtxn.On_demand)
            s.Frame.text
        in
        (u.Travel.name, verdict_kind (Ok (Qdb.submit qdb txn))))
      users
  in
  ignore (Qdb.ground_all qdb);
  (verdicts, Database.copy (Qdb.db qdb))

let loopback_run domains =
  let store = Flights.fresh_store geometry in
  let config = { Server.default_config with Server.domains; max_batch = 8 } in
  let server = Server.start ~config ~store (Server.Tcp ("127.0.0.1", 0)) in
  let addr = Server.address server in
  let per_flight = Array.make geometry.Flights.flights [] in
  let drive f =
    let client = Client.connect addr in
    let mine = List.filter (fun u -> u.Travel.flight = f) users in
    let verdicts =
      List.map
        (fun u ->
          let s = submission_of u in
          (u.Travel.name, verdict_kind (Client.submit_datalog client ~label:s.Frame.label
                                          ?partner:s.Frame.partner s.Frame.text)))
        mine
    in
    Client.close client;
    per_flight.(f) <- verdicts
  in
  let threads =
    List.init geometry.Flights.flights (fun f -> Thread.create (fun () -> drive f) ())
  in
  List.iter Thread.join threads;
  let finisher = Client.connect addr in
  (match Client.ground_all finisher with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "ground_all failed: %s" msg);
  Client.close finisher;
  let db = Database.copy (Qdb.db (Server.qdb server)) in
  Server.stop server;
  Alcotest.(check bool) "server stopped cleanly" true (Server.failure server = None);
  (Array.to_list per_flight |> List.concat, db)

let test_loopback_identity domains () =
  let direct_verdicts, direct_db = direct_run () in
  let server_verdicts, server_db = loopback_run domains in
  List.iter
    (fun (name, kind) ->
      match List.assoc_opt name server_verdicts with
      | None -> Alcotest.failf "user %s got no verdict over the wire" name
      | Some wire_kind ->
        Alcotest.(check string) (Printf.sprintf "verdict for %s" name) kind wire_kind)
    direct_verdicts;
  Alcotest.(check int) "same verdict count" (List.length direct_verdicts)
    (List.length server_verdicts);
  Alcotest.(check bool) "identical databases after ground_all" true
    (Database.equal direct_db server_db)

(* -- Loopback: per-request failures stay on their session -------------------- *)

let test_loopback_errors () =
  let store = Flights.fresh_store geometry in
  let server = Server.start ~store (Server.Tcp ("127.0.0.1", 0)) in
  let client = Client.connect (Server.address server) in
  (match Client.hello client with
   | Ok banner -> Alcotest.(check string) "banner" "qdb/1" banner
   | Error msg -> Alcotest.failf "hello failed: %s" msg);
  (match Client.submit_datalog client ~label:"bad" "this is not datalog" with
   | Error msg ->
     Alcotest.(check bool) "syntax error surfaced" true
       (String.length msg > 0)
   | Ok _ -> Alcotest.fail "garbage text admitted");
  (match Client.ground client 424242 with
   | Ok n -> Alcotest.(check int) "unknown id grounds nothing" 0 n
   | Error msg -> Alcotest.failf "unknown-id ground was a transport error: %s" msg);
  (* The session survived both failures. *)
  (match Client.ping client "still-there" with
   | Ok payload -> Alcotest.(check string) "pong" "still-there" payload
   | Error msg -> Alcotest.failf "ping after errors failed: %s" msg);
  Client.close client;
  Server.stop server

(* -- Backpressure: a stalled reader only stalls itself ----------------------- *)

let test_stalled_session_isolated () =
  let store = Flights.fresh_store geometry in
  let config = { Server.default_config with Server.session_buffer = 2; max_batch = 4 } in
  let server = Server.start ~config ~store (Server.Tcp ("127.0.0.1", 0)) in
  let addr = Server.address server in
  let flood = 64 in
  let stalled = Client.connect addr in
  (* Fire-and-forget a pile of pings without reading a single response:
     at most [session_buffer] of them are ever in flight server-side;
     the rest queue in socket buffers while this session's reader
     thread sits in the semaphore. *)
  for i = 0 to flood - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "send %d accepted" i)
      true
      (Client.send stalled (Frame.Ping (string_of_int i)))
  done;
  (* A well-behaved concurrent session must make progress while the
     flooder refuses to read. *)
  let brisk = Client.connect addr in
  for i = 0 to 9 do
    match Client.ping brisk (Printf.sprintf "brisk-%d" i) with
    | Ok payload ->
      Alcotest.(check string) "brisk pong" (Printf.sprintf "brisk-%d" i) payload
    | Error msg -> Alcotest.failf "brisk session stalled by flooder: %s" msg
  done;
  Client.close brisk;
  (* The flooder then drains everything, in order, nothing lost. *)
  for i = 0 to flood - 1 do
    match Client.recv stalled with
    | Ok (Frame.Pong payload) ->
      Alcotest.(check string) (Printf.sprintf "pong %d in order" i) (string_of_int i) payload
    | Ok frame -> Alcotest.failf "expected Pong, got %s" (Frame.to_string frame)
    | Error _ -> Alcotest.failf "flooded session lost response %d" i
  done;
  Client.close stalled;
  Server.stop server

(* A protocol-legal window-defeat attempt: interleave Hellos (handled
   inline, no engine round-trip) with requests, never read a byte.
   Hello responses must consume window slots like any other — if they
   widened the window instead (the old bug: the writer released a permit
   per frame written, including frames that never acquired one), the
   flooder's backlog would eventually fill its response mailbox and
   block the engine thread on it, stalling every other session. *)
let test_hello_flood_isolated () =
  let store = Flights.fresh_store geometry in
  let config = { Server.default_config with Server.session_buffer = 2; max_batch = 4 } in
  let server = Server.start ~config ~store (Server.Tcp ("127.0.0.1", 0)) in
  let addr = Server.address server in
  let rounds = 32 in
  let flooder = Client.connect addr in
  for i = 0 to rounds - 1 do
    Alcotest.(check bool) (Printf.sprintf "hello %d accepted" i) true
      (Client.send flooder (Frame.Hello (string_of_int i)));
    Alcotest.(check bool) (Printf.sprintf "ping %d accepted" i) true
      (Client.send flooder (Frame.Ping (string_of_int i)))
  done;
  (* The engine must still serve other sessions promptly. *)
  let brisk = Client.connect addr in
  for i = 0 to 9 do
    match Client.ping brisk (Printf.sprintf "brisk-%d" i) with
    | Ok payload ->
      Alcotest.(check string) "brisk pong" (Printf.sprintf "brisk-%d" i) payload
    | Error msg -> Alcotest.failf "brisk session stalled by hello flooder: %s" msg
  done;
  Client.close brisk;
  (* The flooder drains its whole backlog, nothing lost: all Hello_oks
     (enqueued inline by the reader) and all pongs, the latter in
     request order.  The two kinds interleave freely on the wire — the
     reader may enqueue Hello_ok(i+1) before the engine acks ping i. *)
  let hellos = ref 0 and pongs = ref [] in
  for i = 0 to (2 * rounds) - 1 do
    match Client.recv flooder with
    | Ok (Frame.Hello_ok _) -> incr hellos
    | Ok (Frame.Pong payload) -> pongs := payload :: !pongs
    | Ok frame -> Alcotest.failf "frame %d: unexpected %s" i (Frame.to_string frame)
    | Error _ -> Alcotest.failf "frame %d of %d lost" i (2 * rounds)
  done;
  Alcotest.(check int) "every hello answered" rounds !hellos;
  Alcotest.(check (list string)) "pongs in request order"
    (List.init rounds string_of_int) (List.rev !pongs);
  Client.close flooder;
  Server.stop server;
  Alcotest.(check bool) "no failure recorded" true (Server.failure server = None)

(* -- Gate: the closable session window --------------------------------------- *)

let test_gate_close_wakes_blocked () =
  let gate = Net.Gate.create 1 in
  Alcotest.(check bool) "first acquire succeeds" true (Net.Gate.acquire gate);
  let woke = ref None in
  let parked = Thread.create (fun () -> woke := Some (Net.Gate.acquire gate)) () in
  Thread.delay 0.05; (* let it park on the empty gate *)
  Alcotest.(check (option bool)) "still parked" None !woke;
  Net.Gate.close gate;
  Thread.join parked;
  Alcotest.(check (option bool)) "woken with failure" (Some false) !woke;
  Alcotest.(check bool) "acquire after close fails" false (Net.Gate.acquire gate);
  (* A writer finishing after teardown must not crash. *)
  Net.Gate.release gate;
  Alcotest.(check bool) "still closed after release" false (Net.Gate.acquire gate)

(* -- Graceful shutdown answers everything admitted --------------------------- *)

let test_stop_acks_admitted () =
  let store = Flights.fresh_store geometry in
  let server = Server.start ~store (Server.Tcp ("127.0.0.1", 0)) in
  let client = Client.connect (Server.address server) in
  let n = 8 in
  for i = 0 to n - 1 do
    ignore (Client.send client (Frame.Ping (string_of_int i)))
  done;
  (* Stop races the pings: everything that reached the engine queue must
     still be answered (drain-then-disconnect), and the tail may see a
     clean close — never a hang, never a half-written frame. *)
  let stopper = Thread.create (fun () -> Server.stop server) () in
  let answered = ref 0 in
  (try
     for _ = 0 to n - 1 do
       match Client.recv client with
       | Ok (Frame.Pong _) -> incr answered
       | Ok (Frame.Error_msg _) -> raise Exit (* shutting down: allowed *)
       | Ok frame -> Alcotest.failf "unexpected frame %s" (Frame.to_string frame)
       | Error _ -> raise Exit
     done
   with Exit -> ());
  Thread.join stopper;
  Client.close client;
  Alcotest.(check bool) "server reports no failure" true (Server.failure server = None);
  Alcotest.(check bool) "answered count sane" true (!answered <= n)

let suite =
  [ QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation_waits;
    QCheck_alcotest.to_alcotest prop_concatenation;
    QCheck_alcotest.to_alcotest prop_garbage_total;
    Alcotest.test_case "oversized payloads rejected" `Quick test_oversized_rejected;
    Alcotest.test_case "zero-length payloads rejected" `Quick test_zero_length_rejected;
    Alcotest.test_case "unknown tags rejected" `Quick test_unknown_tag_rejected;
    Alcotest.test_case "trailing payload bytes rejected" `Quick test_trailing_bytes_rejected;
    Alcotest.test_case "overlong inner strings rejected" `Quick test_truncated_string_rejected;
    Alcotest.test_case "loopback sessions = direct engine (1 domain)" `Quick
      (test_loopback_identity 1);
    Alcotest.test_case "loopback sessions = direct engine (2 domains)" `Quick
      (test_loopback_identity 2);
    Alcotest.test_case "loopback sessions = direct engine (4 domains)" `Quick
      (test_loopback_identity 4);
    Alcotest.test_case "per-request failures stay on their session" `Quick
      test_loopback_errors;
    Alcotest.test_case "stalled reader only stalls itself" `Quick
      test_stalled_session_isolated;
    Alcotest.test_case "hello flood cannot widen the session window" `Quick
      test_hello_flood_isolated;
    Alcotest.test_case "gate close wakes parked readers" `Quick
      test_gate_close_wakes_blocked;
    Alcotest.test_case "graceful stop answers everything admitted" `Quick
      test_stop_acks_admitted;
  ]

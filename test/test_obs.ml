(* Tests for the observability subsystem: histogram bucketing and
   quantiles at boundaries, trace-ring wraparound, exporter output parsed
   back through the JSON layer, and end-to-end spans from a live engine. *)

module Histogram = Obs.Histogram
module Trace = Obs.Trace
module Registry = Obs.Registry
module Export = Obs.Export
module Json = Obs.Json
module Qdb = Quantum.Qdb
module Flights = Workload.Flights
module Travel = Workload.Travel

(* Every test that records must leave the process-global ring disabled:
   the other suites run in the same process. *)
let with_tracing ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect f ~finally:(fun () -> Trace.disable (); Trace.clear ())

(* -- Histogram --------------------------------------------------------------- *)

let test_hist_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 0. (Histogram.sum h);
  Alcotest.(check (float 0.)) "quantile of empty" 0. (Histogram.quantile h 0.5);
  Alcotest.(check (float 0.)) "min" 0. (Histogram.min_value h);
  Alcotest.(check (float 0.)) "max" 0. (Histogram.max_value h)

let test_hist_bucket_boundaries () =
  (* Buckets are lower-inclusive: a value must fall inside its bucket's
     [lower, upper] range, and nudging it upward never moves it down. *)
  List.iter
    (fun v ->
      let i = Histogram.index v in
      (* 1-ulp slack: bucket bounds are computed as lo * 10^(i/20) and a
         boundary value can land one bucket either way. *)
      Alcotest.(check bool)
        (Printf.sprintf "bucket of %g covers it" v)
        true
        (Histogram.bucket_upper i >= v *. (1. -. 1e-12)
         && Histogram.bucket_lower i <= v *. (1. +. 1e-12));
      let above = Histogram.index (v *. 1.0001) in
      Alcotest.(check bool) (Printf.sprintf "%g*1.0001 not below" v) true (above >= i))
    [ 1e-9; 1e-6; 1e-3; 1.; 10.; 999. ];
  (* Clamping: negatives and NaN land in the underflow bucket as 0. *)
  let h = Histogram.create () in
  Histogram.observe h (-5.);
  Histogram.observe h Float.nan;
  Alcotest.(check int) "clamped count" 2 (Histogram.count h);
  Alcotest.(check (float 0.)) "clamped sum" 0. (Histogram.sum h);
  (* Overflow: beyond the top decade still counts, max is exact. *)
  Histogram.observe h 1e6;
  Alcotest.(check (float 0.)) "overflow max exact" 1e6 (Histogram.max_value h)

let test_hist_quantiles () =
  let h = Histogram.create () in
  (* 100 observations spread over two decades. *)
  for i = 1 to 100 do
    Histogram.observe h (1e-4 *. float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  let p50 = Histogram.quantile h 0.5 in
  let p99 = Histogram.quantile h 0.99 in
  (* Bucketed estimates: within the 12% relative error bound, generously
     doubled for rank rounding at bucket edges. *)
  Alcotest.(check bool) "p50 near 5e-3" true (p50 > 3.5e-3 && p50 < 6.5e-3);
  Alcotest.(check bool) "p99 near 1e-2" true (p99 > 7.5e-3 && p99 <= 1.2e-2);
  Alcotest.(check bool) "monotone" true (p50 <= p99);
  (* Extremes stay within one bucket width (12%) of the exact envelope. *)
  let q0 = Histogram.quantile h 0. and q1 = Histogram.quantile h 1. in
  Alcotest.(check bool) "q=0 near min" true
    (q0 >= Histogram.min_value h && q0 <= Histogram.min_value h *. 1.13);
  Alcotest.(check bool) "q=1 near max" true
    (q1 <= Histogram.max_value h && q1 >= Histogram.max_value h *. 0.88);
  (* Single observation: every quantile is that value. *)
  let one = Histogram.create () in
  Histogram.observe one 0.25;
  List.iter
    (fun q -> Alcotest.(check (float 1e-12)) "single-obs quantile" 0.25 (Histogram.quantile one q))
    [ 0.; 0.5; 0.99; 1. ]

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.observe a 1e-3;
  Histogram.observe b 1e-1;
  Histogram.observe b 1e-2;
  Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 3 (Histogram.count a);
  Alcotest.(check (float 1e-12)) "merged sum" 0.111 (Histogram.sum a);
  Alcotest.(check (float 1e-12)) "merged min" 1e-3 (Histogram.min_value a);
  Alcotest.(check (float 1e-12)) "merged max" 1e-1 (Histogram.max_value a)

(* -- Trace ring --------------------------------------------------------------- *)

let test_trace_disabled_noop () =
  Trace.clear ();
  Alcotest.(check bool) "off by default" false (Trace.on ());
  let r = Trace.span "never.recorded" (fun () -> 42) in
  Trace.instant "also.never";
  Alcotest.(check int) "span passes value through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events ()))

let test_trace_ring_wraparound () =
  with_tracing ~capacity:16 @@ fun () ->
  (* capacity clamps to >= 16; overfill by 3. *)
  for i = 0 to 18 do
    Trace.instant ~args:[ ("i", Trace.Int i) ] "tick"
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "ring holds capacity" 16 (List.length evs);
  Alcotest.(check int) "recorded counts all" 19 (Trace.recorded ());
  Alcotest.(check int) "dropped the overflow" 3 (Trace.dropped ());
  (* Oldest surviving event is #3; order is chronological. *)
  let indices =
    List.map
      (fun (e : Trace.event) ->
        match e.Trace.args with
        | [ ("i", Trace.Int i) ] -> i
        | _ -> Alcotest.fail "bad args")
      evs
  in
  Alcotest.(check (list int)) "chronological survivors" (List.init 16 (fun i -> i + 3)) indices

let test_trace_span_records_on_raise () =
  with_tracing @@ fun () ->
  (try Trace.span "failing" (fun () -> failwith "boom") with Failure _ -> ());
  match Trace.events () with
  | [ e ] ->
    Alcotest.(check string) "name" "failing" e.Trace.name;
    Alcotest.(check bool) "is a span" true (e.Trace.ph = Trace.Span)
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))

(* -- Exporters ---------------------------------------------------------------- *)

let mem name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ name)

let num j =
  match Json.to_number j with
  | Some n -> n
  | None -> Alcotest.fail "not a number"

let str j =
  match Json.to_str j with
  | Some s -> s
  | None -> Alcotest.fail "not a string"

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  go 0

let sample_registry () =
  let reg = Registry.create () in
  Registry.set_counter reg "qdb.submitted" 7;
  Registry.set_gauge reg "qdb.pending" 3.;
  let h = Registry.histogram reg "qdb.submit.latency" in
  Histogram.observe h 1e-3;
  Histogram.observe h 2e-3;
  reg

let test_json_roundtrip () =
  let j =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\n\t");
        ("n", Json.Num 1.5);
        ("i", Json.Num 42.);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.; Json.Str "x" ]);
      ]
  in
  let j' = Json.of_string (Json.to_string j) in
  Alcotest.(check string) "roundtrip" (Json.to_string j) (Json.to_string j')

let test_json_snapshot_parses_back () =
  let reg = sample_registry () in
  let j = Json.of_string (Export.json_snapshot_string reg) in
  let counters = mem "counters" j in
  Alcotest.(check (float 0.)) "counter survives" 7. (num (mem "qdb.submitted" counters));
  let h = mem "qdb.submit.latency" (mem "histograms" j) in
  Alcotest.(check (float 0.)) "count" 2. (num (mem "count" h));
  Alcotest.(check (float 1e-12)) "sum" 3e-3 (num (mem "sum_s" h));
  let p50 = num (mem "p50_s" h) in
  Alcotest.(check bool) "p50 in range" true (p50 >= 1e-3 *. 0.8 && p50 <= 2e-3 *. 1.2)

let test_prometheus_exposition () =
  let text = Export.prometheus (sample_registry ()) in
  let has needle = contains text needle in
  Alcotest.(check bool) "counter line" true (has "qdb_submitted 7");
  Alcotest.(check bool) "gauge line" true (has "qdb_pending 3");
  Alcotest.(check bool) "histogram sum" true (has "qdb_submit_latency_sum");
  Alcotest.(check bool) "cumulative +Inf bucket" true (has "le=\"+Inf\"} 2")

let test_chrome_trace_well_formed () =
  with_tracing @@ fun () ->
  ignore (Trace.span ~cat:"t" ~args:(fun () -> [ ("k", Trace.Str "v") ]) "outer" (fun () -> 1));
  Trace.instant ~cat:"t" "mark";
  let j = Json.of_string (Export.chrome_trace_string (Trace.events ())) in
  let evs = Json.to_list (mem "traceEvents" j) in
  Alcotest.(check int) "two events" 2 (List.length evs);
  let phases = List.map (fun e -> str (mem "ph" e)) evs in
  Alcotest.(check (list string)) "phases" [ "X"; "i" ] phases;
  List.iter
    (fun e -> Alcotest.(check bool) "has ts" true (num (mem "ts" e) >= 0.))
    evs

(* -- Engine integration -------------------------------------------------------- *)

let test_engine_spans () =
  with_tracing @@ fun () ->
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let qdb = Qdb.create store in
  let u = { Travel.name = "mickey"; partner = "-"; flight = 0 } in
  (match Qdb.submit qdb (Travel.plain_txn u) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.fail ("unexpected rejection: " ^ r));
  ignore (Qdb.ground_all qdb);
  let evs = Trace.events () in
  let spans name =
    List.filter (fun (e : Trace.event) -> e.Trace.name = name && e.Trace.ph = Trace.Span) evs
  in
  let submit = spans "qdb.submit" and ground = spans "qdb.ground" in
  Alcotest.(check int) "one submit span" 1 (List.length submit);
  Alcotest.(check bool) "ground span present" true (ground <> []);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "non-negative duration" true (Int64.compare e.Trace.dur_ns 0L >= 0);
      (* A whole submit on a toy store still finishes within a minute —
         catches ns/us unit mix-ups. *)
      Alcotest.(check bool) "duration sane" true (Int64.compare e.Trace.dur_ns 60_000_000_000L < 0))
    (submit @ ground);
  (* The submit span carries its admission outcome. *)
  match submit with
  | [ e ] ->
    Alcotest.(check bool) "outcome arg" true
      (List.exists (fun (k, v) -> k = "outcome" && v = Trace.Str "committed") e.Trace.args)
  | _ -> assert false

let test_engine_registry_counts () =
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let qdb = Qdb.create store in
  let u = { Travel.name = "mickey"; partner = "-"; flight = 0 } in
  ignore (Qdb.submit qdb (Travel.plain_txn u));
  ignore (Qdb.read qdb (Travel.seat_query u));
  let reg = Qdb.registry qdb in
  let counter name =
    match Registry.find reg name with
    | Some (Registry.Counter n) -> n
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check int) "submitted" 1 (counter "qdb.submitted");
  Alcotest.(check int) "reads" 1 (counter "qdb.reads");
  Alcotest.(check bool) "wal recorded writes" true (counter "wal.records" > 0);
  match Registry.find reg "qdb.submit.latency" with
  | Some (Registry.Histogram h) ->
    Alcotest.(check int) "submit latency observed" 1 (Histogram.count h)
  | _ -> Alcotest.fail "missing submit latency histogram"

let suite =
  [ Alcotest.test_case "histogram empty" `Quick test_hist_empty;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_hist_bucket_boundaries;
    Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
    Alcotest.test_case "histogram merge" `Quick test_hist_merge;
    Alcotest.test_case "trace disabled is no-op" `Quick test_trace_disabled_noop;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_ring_wraparound;
    Alcotest.test_case "trace span records on raise" `Quick test_trace_span_records_on_raise;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json snapshot parses back" `Quick test_json_snapshot_parses_back;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_trace_well_formed;
    Alcotest.test_case "engine emits submit/ground spans" `Quick test_engine_spans;
    Alcotest.test_case "engine registry counts" `Quick test_engine_registry_counts;
  ]

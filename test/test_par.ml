(* Tests for the domain pool and everything the engine runs on it:
   deterministic map semantics, the split refill/recheck cache phases,
   the O(1) pending bookkeeping, sharded-workload determinism across
   pool sizes, and crash-monkey under a pool. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
module Cache = Solver.Cache
module Backtrack = Solver.Backtrack
module Qdb = Quantum.Qdb
module Runner = Workload.Runner
module Travel = Workload.Travel
module Flights = Workload.Flights
open Logic

(* -- Pool.map ---------------------------------------------------------------- *)

let with_pool domains f =
  let pool = Par.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let test_map_order () =
  List.iter
    (fun domains ->
      with_pool domains @@ fun pool ->
      let items = List.init 50 Fun.id in
      let got = Par.Pool.map pool (fun i -> i * i) items in
      Alcotest.(check (list int))
        (Printf.sprintf "input order preserved at %d domain(s)" domains)
        (List.map (fun i -> i * i) items)
        got)
    [ 1; 2; 4 ]

let test_map_empty_and_singleton () =
  with_pool 3 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Par.Pool.map pool (fun i -> i) []);
  Alcotest.(check (list string)) "singleton" [ "7" ] (Par.Pool.map pool string_of_int [ 7 ])

let test_map_exception_first_by_index () =
  List.iter
    (fun domains ->
      with_pool domains @@ fun pool ->
      match
        Par.Pool.map pool
          (fun i -> if i mod 2 = 1 then failwith (Printf.sprintf "boom %d" i) else i)
          (List.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* Jobs 1,3,5,7 all fail; the sequential stop point is job 1. *)
        Alcotest.(check string)
          (Printf.sprintf "lowest-index failure at %d domain(s)" domains)
          "boom 1" msg)
    [ 1; 2; 4 ]

(* A poisoned job must not wedge the pool: the raising map re-raises on
   the caller, and the SAME pool then serves further maps with ordered
   results — the property the engine's fault-absorption paths (refill
   abandonment, write-recheck abort) rely on. *)
let test_pool_usable_after_poisoned_job () =
  List.iter
    (fun domains ->
      with_pool domains @@ fun pool ->
      (try
         ignore
           (Par.Pool.map pool (fun i -> if i = 3 then failwith "poisoned" else i)
              (List.init 6 Fun.id))
       with Failure _ -> ());
      let got = Par.Pool.map pool (fun i -> i * 10) (List.init 12 Fun.id) in
      Alcotest.(check (list int))
        (Printf.sprintf "ordered results after poison at %d domain(s)" domains)
        (List.init 12 (fun i -> i * 10))
        got;
      (* Repeated poison rounds do not accumulate damage. *)
      (try ignore (Par.Pool.map pool (fun _ -> failwith "again") [ 1; 2 ])
       with Failure _ -> ());
      Alcotest.(check (list int))
        (Printf.sprintf "still alive after second poison at %d domain(s)" domains)
        [ 2; 4; 6 ]
        (Par.Pool.map pool (fun i -> i * 2) [ 1; 2; 3 ]))
    [ 1; 2; 4 ]

let test_pool_reusable_after_map () =
  with_pool 2 @@ fun pool ->
  Alcotest.(check int) "size" 2 (Par.Pool.size pool);
  for round = 1 to 5 do
    let got = Par.Pool.map pool succ (List.init 10 Fun.id) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d" round)
      (List.init 10 succ) got
  done

(* -- Cache refill: split phases, over-ask fix, dedup ------------------------- *)

(* R(a,b) with n rows (i, i); the formula R(x,y) has exactly n witnesses. *)
let xv = Term.fresh_var "x"
let yv = Term.fresh_var "y"

let r_db n =
  let db = Database.create () in
  let r =
    Database.create_table db
      (Schema.make ~name:"R"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ())
  in
  for i = 0 to n - 1 do
    ignore (Relational.Table.insert r (Tuple.of_list [ Value.Int i; Value.Int i ]))
  done;
  db

let r_formula = Formula.atom (Atom.make "R" [ Term.V xv; Term.V yv ])

let ground_witness i =
  Subst.bind xv (Term.int i) (Subst.bind yv (Term.int i) Subst.empty)

let witness_satisfies db w formula =
  let lookup v =
    match Subst.resolve w (Term.V v) with
    | Term.C value -> Some value
    | Term.V _ -> None
  in
  try Formula.eval db lookup formula with Formula.Unbound _ -> false

let test_refill_tops_up_and_dedups () =
  let db = r_db 5 in
  let cache = Cache.create ~capacity:3 () in
  Cache.set_witness cache (ground_witness 0);
  let held = Cache.refill cache db r_formula in
  Alcotest.(check int) "topped up to capacity" 3 held;
  let ws = Cache.witnesses cache in
  Alcotest.(check int) "holds capacity witnesses" 3 (List.length ws);
  (* All distinct, and every one satisfies the formula. *)
  let keys =
    List.map (fun w -> List.sort compare (List.map (fun (v, t) -> (v.Term.vid, t)) (Subst.bindings w))) ws
  in
  Alcotest.(check int) "witnesses are distinct" 3 (List.length (List.sort_uniq compare keys));
  List.iter
    (fun w ->
      Alcotest.(check bool) "witness satisfies" true (witness_satisfies db w r_formula))
    ws

let test_refill_fewer_solutions_than_capacity () =
  (* Only 2 solutions exist; a capacity-3 cache holding one of them must
     end with exactly 2 — the known witness deduplicated against the
     enumeration, not double-counted (the over-ask bug). *)
  let db = r_db 2 in
  let cache = Cache.create ~capacity:3 () in
  Cache.set_witness cache (ground_witness 1);
  let held = Cache.refill cache db r_formula in
  Alcotest.(check int) "both solutions, no duplicates" 2 held;
  Alcotest.(check int) "witness list agrees" 2 (List.length (Cache.witnesses cache))

let test_refill_plan_none_at_capacity () =
  let db = r_db 4 in
  let cache = Cache.create ~capacity:2 () in
  ignore (Cache.refill cache db r_formula);
  Alcotest.(check bool) "at capacity: no job" true (Cache.refill_plan cache r_formula = None)

let test_refill_split_phases_match_inline () =
  let db = r_db 6 in
  let inline_cache = Cache.create ~capacity:4 () in
  Cache.set_witness inline_cache (ground_witness 2);
  let inline_held = Cache.refill inline_cache db r_formula in
  let split_cache = Cache.create ~capacity:4 () in
  Cache.set_witness split_cache (ground_witness 2);
  let split_held =
    match Cache.refill_plan split_cache r_formula with
    | None -> Alcotest.fail "expected a refill job"
    | Some job ->
      let fresh = Cache.refill_compute ~stats:(Backtrack.fresh_stats ()) db job in
      Cache.refill_install split_cache fresh
  in
  Alcotest.(check int) "same held count" inline_held split_held;
  let key w = List.map (fun (v, t) -> (v.Term.vid, t)) (Subst.bindings w) in
  Alcotest.(check bool) "same witness sets" true
    (List.for_all2
       (fun a b -> key a = key b)
       (Cache.witnesses inline_cache) (Cache.witnesses split_cache))

(* -- Recheck outcomes -------------------------------------------------------- *)

let test_recheck_keep () =
  let db = r_db 3 in
  let stats = Backtrack.fresh_stats () in
  match
    Cache.recheck_compute ~stats db
      ~witnesses:[ ground_witness 0; ground_witness 2 ]
      ~formula:r_formula
  with
  | Cache.Keep ws -> Alcotest.(check int) "both survive, order kept" 2 (List.length ws)
  | Cache.Rewitness _ | Cache.Unsat_now -> Alcotest.fail "expected Keep"

let test_recheck_rewitness () =
  let db = r_db 3 in
  let stats = Backtrack.fresh_stats () in
  match
    Cache.recheck_compute ~stats db ~witnesses:[ ground_witness 99 ] ~formula:r_formula
  with
  | Cache.Rewitness w ->
    Alcotest.(check bool) "fresh witness satisfies" true (witness_satisfies db w r_formula)
  | Cache.Keep _ -> Alcotest.fail "dead witness kept"
  | Cache.Unsat_now -> Alcotest.fail "satisfiable formula declared unsat"

let test_recheck_unsat () =
  let db = r_db 0 in
  let stats = Backtrack.fresh_stats () in
  (match
     Cache.recheck_compute ~stats db ~witnesses:[ ground_witness 0 ] ~formula:r_formula
   with
   | Cache.Unsat_now -> ()
   | Cache.Keep _ | Cache.Rewitness _ -> Alcotest.fail "expected Unsat_now");
  (* Installing Unsat_now invalidates and reports unsatisfiable. *)
  let cache = Cache.create ~capacity:2 () in
  Cache.set_witness cache (ground_witness 0);
  Alcotest.(check bool) "install reports unsat" false
    (Cache.recheck_install cache Cache.Unsat_now);
  Alcotest.(check int) "cache emptied" 0 (List.length (Cache.witnesses cache))

(* -- Engine pending bookkeeping (O(1) count / id lookup) ---------------------- *)

let test_pending_bookkeeping () =
  let geometry = { Flights.flights = 1; rows_per_flight = 4; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  let users = Travel.make_users ~flights:1 ~pairs_per_flight:4 in
  let ids =
    List.filter_map
      (fun u ->
        match Qdb.submit qdb (Travel.plain_txn u) with
        | Qdb.Committed id -> Some id
        | Qdb.Rejected _ | Qdb.Overloaded _ -> None)
      users
  in
  Alcotest.(check int) "count tracks submissions" (List.length ids) (Qdb.pending_count qdb);
  (* Ground half of them one by one through the id lookup. *)
  let half = List.filteri (fun i _ -> i mod 2 = 0) ids in
  List.iter (fun id -> ignore (Qdb.ground qdb id)) half;
  Alcotest.(check int) "count tracks groundings"
    (List.length ids - List.length half)
    (Qdb.pending_count qdb);
  Alcotest.(check int) "pending list agrees with count" (Qdb.pending_count qdb)
    (List.length (Qdb.pending qdb));
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "empty after ground_all" 0 (Qdb.pending_count qdb)

(* -- Sharded-workload determinism across pool sizes --------------------------- *)

let shard_spec =
  {
    Runner.default_spec with
    Runner.geometry = { Flights.flights = 3; rows_per_flight = 4; dest = "LA" };
    pairs_per_flight = 6;
    order = Travel.Random_order;
    seed = 7;
  }

let collect_dbs () =
  let dbs = ref [] in
  let collect ~flight db = dbs := (flight, Database.copy db) :: !dbs in
  (dbs, collect)

let test_sharded_determinism_across_domains () =
  let engine = Runner.Quantum_engine { Qdb.default_config with Qdb.cache_capacity = 2 } in
  let dbs1, collect1 = collect_dbs () in
  let o1 = with_pool 1 (fun pool -> Runner.run_sharded ~pool ~collect:collect1 engine shard_spec) in
  let dbs4, collect4 = collect_dbs () in
  let o4 = with_pool 4 (fun pool -> Runner.run_sharded ~pool ~collect:collect4 engine shard_spec) in
  Alcotest.(check int) "committed identical" o1.Runner.committed o4.Runner.committed;
  Alcotest.(check int) "rejected identical" o1.Runner.rejected o4.Runner.rejected;
  Alcotest.(check (float 1e-9)) "coordination identical" o1.Runner.coordination_pct
    o4.Runner.coordination_pct;
  let sort l = List.sort (fun (a, _) (b, _) -> compare a b) !l in
  List.iter2
    (fun (f1, db1) (f4, db4) ->
      Alcotest.(check int) "same flight" f1 f4;
      Alcotest.(check bool)
        (Printf.sprintf "flight %d database identical" f1)
        true (Database.equal db1 db4))
    (sort dbs1) (sort dbs4)

let test_sharded_matches_unsharded_outcomes () =
  (* Flights are independent partitions by construction, so the global
     interleaved run and the per-flight sharded run must admit and
     coordinate identically. *)
  let engine = Runner.Quantum_engine Qdb.default_config in
  let global = Runner.run engine shard_spec in
  let sharded = with_pool 2 (fun pool -> Runner.run_sharded ~pool engine shard_spec) in
  Alcotest.(check int) "committed" global.Runner.committed sharded.Runner.committed;
  Alcotest.(check int) "rejected" global.Runner.rejected sharded.Runner.rejected;
  Alcotest.(check (float 1e-9)) "coordination" global.Runner.coordination_pct
    sharded.Runner.coordination_pct

(* -- Mailbox close semantics across domains ----------------------------------
   The shutdown handshake the network front door leans on: senders
   blocked on a full mailbox must wake and learn the close (no enqueue,
   no hang), and the consumer must drain everything accepted before
   seeing [None] — acks admitted before a close are never dropped. *)

let test_mailbox_blocked_senders_wake_on_close () =
  let mb = Par.Mailbox.create ~capacity:1 () in
  Alcotest.(check bool) "first send fits" true (Par.Mailbox.send mb 0);
  let results = Array.make 3 None in
  let senders =
    Array.init 3 (fun i ->
        Domain.spawn (fun () -> results.(i) <- Some (Par.Mailbox.send mb (i + 1))))
  in
  (* Let the senders reach the full-mailbox wait before closing. *)
  let rec settle tries =
    if tries > 0 && Par.Mailbox.length mb >= Par.Mailbox.capacity mb then begin
      Thread.yield ();
      settle (tries - 1)
    end
  in
  settle 1000;
  Par.Mailbox.close mb;
  Array.iter Domain.join senders;
  Array.iteri
    (fun i r ->
      Alcotest.(check (option bool))
        (Printf.sprintf "blocked sender %d returned false" i)
        (Some false) r)
    results;
  (* The message accepted before the close still drains, then None. *)
  Alcotest.(check (option int)) "accepted message drains" (Some 0) (Par.Mailbox.recv mb);
  Alcotest.(check (option int)) "then closed" None (Par.Mailbox.recv mb)

let test_mailbox_drains_before_none () =
  let mb = Par.Mailbox.create ~capacity:8 () in
  for i = 0 to 4 do
    Alcotest.(check bool) "send accepted" true (Par.Mailbox.send mb i)
  done;
  Par.Mailbox.close mb;
  Alcotest.(check bool) "send after close refused" false (Par.Mailbox.send mb 99);
  let consumer =
    Domain.spawn (fun () ->
        let rec drain acc =
          match Par.Mailbox.recv mb with
          | Some v -> drain (v :: acc)
          | None -> List.rev acc
        in
        drain [])
  in
  Alcotest.(check (list int)) "FIFO drain then None" [ 0; 1; 2; 3; 4 ] (Domain.join consumer)

let test_mailbox_blocked_receiver_wakes_on_close () =
  let mb : int Par.Mailbox.t = Par.Mailbox.create ~capacity:4 () in
  let consumer = Domain.spawn (fun () -> Par.Mailbox.recv mb) in
  Thread.yield ();
  Par.Mailbox.close mb;
  Alcotest.(check (option int)) "empty+closed receiver wakes to None" None
    (Domain.join consumer)

let test_mailbox_recv_batch () =
  let mb = Par.Mailbox.create ~capacity:16 () in
  for i = 0 to 9 do
    ignore (Par.Mailbox.send mb i)
  done;
  Alcotest.(check (list int)) "batch capped at max, oldest first" [ 0; 1; 2; 3 ]
    (Par.Mailbox.recv_batch ~max:4 mb);
  Alcotest.(check (list int)) "rest in one batch" [ 4; 5; 6; 7; 8; 9 ]
    (Par.Mailbox.recv_batch mb);
  (* Batch recv unblocks senders that were waiting on a full mailbox. *)
  let mb2 = Par.Mailbox.create ~capacity:2 () in
  ignore (Par.Mailbox.send mb2 0);
  ignore (Par.Mailbox.send mb2 1);
  let sender = Domain.spawn (fun () -> Par.Mailbox.send mb2 2) in
  Thread.yield ();
  Alcotest.(check (list int)) "drain frees capacity" [ 0; 1 ] (Par.Mailbox.recv_batch mb2);
  Alcotest.(check bool) "blocked sender completed" true (Domain.join sender);
  Alcotest.(check (list int)) "late send arrives" [ 2 ] (Par.Mailbox.recv_batch mb2);
  Par.Mailbox.close mb2;
  Alcotest.(check (list int)) "closed and drained: empty batch" []
    (Par.Mailbox.recv_batch mb2);
  Alcotest.(check bool) "rejects max <= 0" true
    (match Par.Mailbox.recv_batch ~max:0 mb2 with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* -- Crash monkey under a pool ------------------------------------------------ *)

let test_crash_monkey_under_pool () =
  let s = with_pool 2 (fun pool -> Workload.Crash_monkey.run ~cycles:12 ~seed:424242 ~pool ()) in
  Alcotest.(check int) "all cycles ran" 12 s.Workload.Crash_monkey.cycles;
  Alcotest.(check (list (pair int string))) "no recovery violations" []
    s.Workload.Crash_monkey.violations

let test_crash_monkey_pool_deterministic () =
  let run () =
    with_pool 2 (fun pool -> Workload.Crash_monkey.run ~cycles:8 ~seed:1234 ~pool ())
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical summaries across runs" true (a = b)

let suite =
  [ Alcotest.test_case "pool: map preserves input order" `Quick test_map_order;
    Alcotest.test_case "pool: empty and singleton inline" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "pool: lowest-index exception wins" `Quick
      test_map_exception_first_by_index;
    Alcotest.test_case "pool: usable after a poisoned job" `Quick
      test_pool_usable_after_poisoned_job;
    Alcotest.test_case "pool: reusable across rounds" `Quick test_pool_reusable_after_map;
    Alcotest.test_case "refill: tops up, dedups, satisfies" `Quick
      test_refill_tops_up_and_dedups;
    Alcotest.test_case "refill: scarce solutions not double-counted" `Quick
      test_refill_fewer_solutions_than_capacity;
    Alcotest.test_case "refill: no job at capacity" `Quick test_refill_plan_none_at_capacity;
    Alcotest.test_case "refill: split phases = inline refill" `Quick
      test_refill_split_phases_match_inline;
    Alcotest.test_case "recheck: surviving witnesses kept" `Quick test_recheck_keep;
    Alcotest.test_case "recheck: dead witnesses re-solved" `Quick test_recheck_rewitness;
    Alcotest.test_case "recheck: unsat refused and invalidated" `Quick test_recheck_unsat;
    Alcotest.test_case "engine: O(1) pending count and id lookup" `Quick
      test_pending_bookkeeping;
    Alcotest.test_case "sharded run identical at 1 vs 4 domains" `Quick
      test_sharded_determinism_across_domains;
    Alcotest.test_case "sharded run matches unsharded outcomes" `Quick
      test_sharded_matches_unsharded_outcomes;
    Alcotest.test_case "mailbox: blocked senders wake on close" `Quick
      test_mailbox_blocked_senders_wake_on_close;
    Alcotest.test_case "mailbox: drains before None" `Quick test_mailbox_drains_before_none;
    Alcotest.test_case "mailbox: blocked receiver wakes on close" `Quick
      test_mailbox_blocked_receiver_wakes_on_close;
    Alcotest.test_case "mailbox: recv_batch order, cap, close" `Quick test_mailbox_recv_batch;
    Alcotest.test_case "crash monkey under pool: zero violations" `Slow
      test_crash_monkey_under_pool;
    Alcotest.test_case "crash monkey under pool: deterministic" `Slow
      test_crash_monkey_pool_deterministic;
  ]

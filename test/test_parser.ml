(* Tests for the Datalog-like parser. *)

module P = Quantum.Datalog_parser
module Rtxn = Quantum.Rtxn
open Logic

let test_figure1 () =
  (* The paper's running example in the intermediate representation. *)
  let txn =
    P.parse_txn ~label:"mickey"
      "-Available(f1, s1), +Bookings(Mickey, f1, s1) :-1 Available(f1, s1), \
       ?Bookings(Goofy, f1, s2), ?Adjacent(s1, s2)"
  in
  Alcotest.(check int) "one hard atom" 1 (List.length txn.Rtxn.hard);
  Alcotest.(check int) "two optional atoms" 2 (List.length txn.Rtxn.optional);
  Alcotest.(check int) "two updates" 2 (List.length txn.Rtxn.updates);
  (* Capitalised bare identifiers are string constants. *)
  (match Rtxn.inserts txn with
   | [ ins ] ->
     Alcotest.(check bool) "Mickey constant" true
       (Term.equal ins.Atom.args.(0) (Term.str "Mickey"))
   | _ -> Alcotest.fail "one insert expected");
  (* Shared variable names refer to the same variable. *)
  let hard = List.hd txn.Rtxn.hard in
  (match Rtxn.deletes txn with
   | [ del ] ->
     Alcotest.(check bool) "f1 shared" true (Term.equal hard.Atom.args.(0) del.Atom.args.(0))
   | _ -> Alcotest.fail "one delete expected")

let test_constraints () =
  let txn =
    P.parse_txn
      "-A(f, s) :-1 A(f, s), f = 3, s <> 7, ?{ s = 1 }"
  in
  Alcotest.(check int) "two hard constraints" 2 (List.length txn.Rtxn.constraints);
  Alcotest.(check int) "one optional constraint" 1 (List.length txn.Rtxn.optional_constraints)

let test_comparisons () =
  let txn = P.parse_txn ":-1 A(x, y), x < 3, y <= 4, x > 0, y >= 1" in
  Alcotest.(check int) "four comparisons" 4 (List.length txn.Rtxn.constraints);
  (* x > 0 normalizes to 0 < x, y >= 1 to 1 <= y. *)
  let has f = List.exists (fun g -> g = f) txn.Rtxn.constraints in
  let x, y =
    match (List.hd txn.Rtxn.hard).Logic.Atom.args with
    | [| x; y |] -> (x, y)
    | _ -> Alcotest.fail "arity"
  in
  Alcotest.(check bool) "x<3" true (has (Logic.Formula.Lt (x, Term.int 3)));
  Alcotest.(check bool) "y<=4" true (has (Logic.Formula.Le (y, Term.int 4)));
  Alcotest.(check bool) "0<x" true (has (Logic.Formula.Lt (Term.int 0, x)));
  Alcotest.(check bool) "1<=y" true (has (Logic.Formula.Le (Term.int 1, y)))

let test_literals () =
  let txn = P.parse_txn {|:-1 R(-5, "hello world", true, false, x)|} in
  let atom = List.hd txn.Rtxn.hard in
  Alcotest.(check bool) "negative int" true (Term.equal atom.Atom.args.(0) (Term.int (-5)));
  Alcotest.(check bool) "string" true (Term.equal atom.Atom.args.(1) (Term.str "hello world"));
  Alcotest.(check bool) "true" true (Term.equal atom.Atom.args.(2) (Term.bool true));
  Alcotest.(check bool) "false" true (Term.equal atom.Atom.args.(3) (Term.bool false));
  Alcotest.(check bool) "variable" true (Term.is_var atom.Atom.args.(4))

let test_pure_choose () =
  let txn = P.parse_txn ":-1 A(x, y)." in
  Alcotest.(check int) "no updates" 0 (List.length txn.Rtxn.updates);
  Alcotest.(check int) "one atom" 1 (List.length txn.Rtxn.hard)

let test_comments_and_dot () =
  let txn = P.parse_txn "% booking\n-A(f, s) :-1 A(f, s). % done" in
  Alcotest.(check int) "parsed through comments" 1 (List.length txn.Rtxn.hard)

let test_query () =
  let q = P.parse_query "(f, s) :- Bookings(Mickey, f, s), f <> 2" in
  Alcotest.(check int) "head arity" 2 (List.length q.Solver.Query.head);
  Alcotest.(check int) "one atom" 1 (List.length q.Solver.Query.body);
  Alcotest.(check int) "one constraint" 1 (List.length q.Solver.Query.constraints)

let test_errors () =
  let fails input =
    match P.parse_txn input with
    | exception P.Syntax_error _ -> true
    | exception Rtxn.Ill_formed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing turnstile" true (fails "-A(f, s) A(f, s)");
  Alcotest.(check bool) "unbalanced parens" true (fails "-A(f, s :-1 A(f, s)");
  Alcotest.(check bool) "trailing garbage" true (fails ":-1 A(x, y) extra(z)..");
  Alcotest.(check bool) "unterminated string" true (fails {|:-1 A("abc|});
  Alcotest.(check bool) "range violation" true (fails "+B(x) :-1 A(y)");
  (match P.parse_query "(x) :- ?A(x)" with
   | exception P.Syntax_error _ -> ()
   | _ -> Alcotest.fail "optional in query must fail")

let test_roundtrip_through_engine () =
  (* A parsed transaction must execute end to end. *)
  let store =
    Workload.Flights.fresh_store { Workload.Flights.flights = 1; rows_per_flight = 1; dest = "LA" }
  in
  let qdb = Quantum.Qdb.create store in
  let txn =
    P.parse_txn ~label:"mickey"
      {|-Available(f, s), +Bookings("mickey", f, s) :-1 Available(f, s), f = 0|}
  in
  (match Quantum.Qdb.submit qdb txn with
   | Quantum.Qdb.Committed _ -> ()
   | Quantum.Qdb.Rejected r | Quantum.Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  ignore (Quantum.Qdb.ground_all qdb);
  Alcotest.(check bool) "booked" true
    (Workload.Flights.booking_of (Quantum.Qdb.db qdb) "mickey" <> None)

let suite =
  [ Alcotest.test_case "Figure 1 transaction" `Quick test_figure1;
    Alcotest.test_case "constraints" `Quick test_constraints;
    Alcotest.test_case "comparison operators" `Quick test_comparisons;
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "pure choose" `Quick test_pure_choose;
    Alcotest.test_case "comments and dot" `Quick test_comments_and_dot;
    Alcotest.test_case "query" `Quick test_query;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "parse and execute" `Quick test_roundtrip_through_engine;
  ]

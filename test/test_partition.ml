(* Tests for the partition manager: dependence, merge exactness, resplit
   after groundings, soft-unit grouping, and the adaptive policy knob. *)

module Value = Relational.Value
module Database = Relational.Database
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Partition = Quantum.Partition
module Compose = Quantum.Compose
module Flights = Workload.Flights
module Travel = Workload.Travel
open Logic

let booking ?(id = -1) user flight =
  let s = Term.V (Term.fresh_var "s") in
  let fc = Term.int flight in
  {
    (Rtxn.make ~label:user
       ~hard:[ Atom.make "Available" [ fc; s ] ]
       ~updates:
         [ Rtxn.Del (Atom.make "Available" [ fc; s ]);
           Rtxn.Ins (Atom.make "Bookings" [ Term.str user; fc; s ]) ]
       ())
    with
    Rtxn.id = id;
  }

let test_dependence () =
  let parts = Partition.create () in
  ignore parts;
  let t0 = booking ~id:0 "a" 0 in
  let t1 = booking ~id:1 "b" 1 in
  let t2 = booking ~id:2 "c" 0 in
  (* Same flight constant unifies; different flight constants do not. *)
  Alcotest.(check bool) "same flight unifies" true
    (Unify.any_unifiable (Rtxn.all_atoms t0) (Rtxn.all_atoms t2));
  Alcotest.(check bool) "different flights independent" false
    (Unify.any_unifiable (Rtxn.all_atoms t0) (Rtxn.all_atoms t1))

(* Merged-partition formula must be equisatisfiable with a from-scratch
   recomposition of the combined sequence (the conjunction-exactness claim
   in partition.ml). *)
let test_merge_exactness () =
  let store = Flights.fresh_store { Flights.flights = 2; rows_per_flight = 1; dest = "LA" } in
  let db = Relational.Store.db store in
  let key_of = Compose.resolver_of_db db in
  let t0 = Rtxn.freshen (booking ~id:0 "a" 0) in
  let t1 = Rtxn.freshen (booking ~id:1 "b" 1) in
  let f0 = Compose.body_of_sequence ~key_of [ { t0 with Rtxn.id = 0 } ] in
  let f1 = Compose.body_of_sequence ~key_of [ { t1 with Rtxn.id = 1 } ] in
  let conjoined = Formula.and_ [ f0; f1 ] in
  let from_scratch =
    Compose.body_of_sequence ~key_of [ { t0 with Rtxn.id = 0 }; { t1 with Rtxn.id = 1 } ]
  in
  Alcotest.(check bool) "conjoined sat" true (Solver.Backtrack.satisfiable db conjoined);
  Alcotest.(check bool) "agree" true
    (Solver.Backtrack.satisfiable db conjoined
     = Solver.Backtrack.satisfiable db from_scratch)

let test_resplit_after_grounding () =
  (* A flight-agnostic bridging transaction merges two flight partitions;
     grounding it must let them split apart again. *)
  let store = Flights.fresh_store { Flights.flights = 2; rows_per_flight = 2; dest = "LA" } in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "a"; partner = "-"; flight = 0 }));
  ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "b"; partner = "-"; flight = 1 }));
  let f = Term.V (Term.fresh_var "f") and s = Term.V (Term.fresh_var "s") in
  let bridging =
    Rtxn.make ~label:"bridge"
      ~hard:[ Atom.make "Available" [ f; s ] ]
      ~updates:
        [ Rtxn.Del (Atom.make "Available" [ f; s ]);
          Rtxn.Ins (Atom.make "Bookings" [ Term.str "bridge"; f; s ]) ]
      ()
  in
  let id =
    match Qdb.submit qdb bridging with
    | Qdb.Committed id -> id
    | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "bridge rejected: %s" r
  in
  Alcotest.(check int) "merged" 1 (Qdb.partition_count qdb);
  ignore (Qdb.ground qdb id);
  Alcotest.(check int) "split after grounding the bridge" 2 (Qdb.partition_count qdb);
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb)

let test_soft_unit_grouping () =
  (* Optional atoms sharing a variable form one unit; independent optional
     atoms stay separate. *)
  let s = Term.V (Term.fresh_var "s") and s2 = Term.V (Term.fresh_var "s2") in
  let w = Term.V (Term.fresh_var "w") in
  let txn =
    Rtxn.make ~label:"g"
      ~hard:[ Atom.make "Available" [ Term.int 0; s ] ]
      ~optional:
        [ Atom.make "Bookings" [ Term.str "p"; Term.int 0; s2 ];
          Atom.make "Adjacent" [ s; s2 ];
          Atom.make "Flights" [ w; Term.str "LA" ];
        ]
      ~updates:[ Rtxn.Del (Atom.make "Available" [ Term.int 0; s ]) ]
      ()
  in
  Alcotest.(check int) "two units" 2 (List.length (Rtxn.soft_formulas txn));
  (* Optional constraints join their unit. *)
  let txn2 =
    Rtxn.make ~label:"g2"
      ~hard:[ Atom.make "Available" [ Term.int 0; s ] ]
      ~optional:[ Atom.make "Bookings" [ Term.str "p"; Term.int 0; s2 ] ]
      ~optional_constraints:[ Formula.eq s s2 ]
      ~updates:[]
      ()
  in
  Alcotest.(check int) "constraint joins unit" 1 (List.length (Rtxn.soft_formulas txn2))

let test_adaptive_policy () =
  (* With adaptive grounding on and a generous slack threshold, pending
     transactions are pre-emptively fixed as seats run low. *)
  let config = { Qdb.default_config with adaptive = true; adaptive_slack = 10. } in
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let qdb = Qdb.create ~config store in
  List.iter
    (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = n; partner = "-"; flight = 0 })))
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check bool) "adaptive grounded pre-emptively" true
    ((Qdb.metrics qdb).Quantum.Metrics.grounded > 0);
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb);
  (* Without the policy nothing is grounded. *)
  let store2 = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let qdb2 = Qdb.create store2 in
  List.iter
    (fun n -> ignore (Qdb.submit qdb2 (Travel.plain_txn { Travel.name = n; partner = "-"; flight = 0 })))
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "no grounding without policy" 0 (Qdb.metrics qdb2).Quantum.Metrics.grounded

(* Robustness property: random interleavings of submissions, reads,
   writes and explicit groundings never break the invariant or crash. *)
let prop_invariant_under_mixed_ops =
  let open QCheck in
  let op_gen = Gen.map (fun (k, who) -> (k mod 5, who mod 4)) (Gen.pair Gen.small_nat Gen.small_nat) in
  Test.make ~name:"invariant holds under random mixed operations" ~count:40
    (make (Gen.list_size (Gen.int_range 1 15) op_gen)
       ~print:(fun ops -> String.concat ";" (List.map (fun (k, w) -> Printf.sprintf "%d/%d" k w) ops)))
    (fun ops ->
      let store = Flights.fresh_store { Flights.flights = 2; rows_per_flight = 1; dest = "LA" } in
      let qdb = Qdb.create store in
      let users = [| "a"; "b"; "c"; "d" |] in
      let counter = ref 0 in
      List.iter
        (fun (kind, who) ->
          incr counter;
          let name = Printf.sprintf "%s%d" users.(who) !counter in
          match kind with
          | 0 | 1 ->
            ignore
              (Qdb.submit qdb
                 (Travel.plain_txn { Travel.name; partner = "-"; flight = who mod 2 }))
          | 2 ->
            ignore
              (Qdb.read qdb
                 (Travel.seat_query { Travel.name = users.(who) ^ "1"; partner = "-"; flight = 0 }))
          | 3 ->
            let tuple =
              Relational.Tuple.of_list [ Value.Int (who mod 2); Value.Int (who mod 3) ]
            in
            ignore (Qdb.write qdb [ Database.Delete ("Available", tuple) ])
          | _ ->
            (match Qdb.pending qdb with
             | txn :: _ -> ignore (Qdb.ground qdb txn.Rtxn.id)
             | [] -> ()))
        ops;
      let ok = Qdb.invariant_holds qdb in
      ignore (Qdb.ground_all qdb);
      ok && Qdb.pending_count qdb = 0)

let suite =
  [ Alcotest.test_case "dependence" `Quick test_dependence;
    Alcotest.test_case "merge exactness" `Quick test_merge_exactness;
    Alcotest.test_case "resplit after grounding" `Quick test_resplit_after_grounding;
    Alcotest.test_case "soft unit grouping" `Quick test_soft_unit_grouping;
    Alcotest.test_case "adaptive policy" `Quick test_adaptive_policy;
    QCheck_alcotest.to_alcotest prop_invariant_under_mixed_ops;
  ]

(* Tests for the extensional possible-worlds reference, including the
   paper's Figure 2 scenario, and the headline equivalence property: the
   quantum engine accepts/rejects exactly like the explicit worlds, and
   collapsing always lands inside the world set. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Pw = Possible_worlds.Pw
module Flights = Workload.Flights
module Travel = Workload.Travel

let geometry rows = { Flights.flights = 1; rows_per_flight = rows; dest = "LA" }
let user name partner = { Travel.name; partner; flight = 0 }

(* Figure 2: one flight, one row (3 seats).  Mickey books any seat (3
   worlds), Donald books any seat (6 worlds), Minnie requests a seat next
   to Mickey — worlds where that is impossible are eliminated. *)
let test_figure2 () =
  let store = Flights.fresh_store (geometry 1) in
  let pw = Pw.create (Relational.Store.db store) in
  Alcotest.(check int) "initial single world" 1 (Pw.world_count pw);
  Alcotest.(check bool) "mickey commits" true
    (Pw.submit pw (Travel.plain_txn (user "mickey" "-")) = `Committed);
  Alcotest.(check int) "three worlds" 3 (Pw.world_count pw);
  Alcotest.(check bool) "donald commits" true
    (Pw.submit pw (Travel.plain_txn (user "donald" "-")) = `Committed);
  Alcotest.(check int) "six worlds" 6 (Pw.world_count pw);
  (* Minnie insists (hard) on sitting next to Mickey. *)
  let minnie =
    let open Logic in
    let s = Term.V (Term.fresh_var "s") and s2 = Term.V (Term.fresh_var "s2") in
    Rtxn.make ~label:"minnie"
      ~hard:
        [ Atom.make "Available" [ Term.int 0; s ];
          Atom.make "Bookings" [ Term.str "mickey"; Term.int 0; s2 ];
          Atom.make "Adjacent" [ s; s2 ];
        ]
      ~updates:
        [ Rtxn.Del (Atom.make "Available" [ Term.int 0; s ]);
          Rtxn.Ins (Atom.make "Bookings" [ Term.str "minnie"; Term.int 0; s ]);
        ]
      ()
  in
  Alcotest.(check bool) "minnie commits" true (Pw.submit pw minnie = `Committed);
  (* Each surviving world seats all three with minnie next to mickey; with
     3 seats in a row, mickey cannot hold the row's only... enumerate:
     arrangements of 3 people in 3 seats with minnie adjacent to mickey:
     seats (A,B,C): adjacent pairs {A,B},{B,C}.  minnie-mickey in a pair,
     donald takes the rest: pairs 2 × orders 2 = 4 worlds. *)
  Alcotest.(check int) "four worlds survive" 4 (Pw.world_count pw);
  (* A fourth passenger cannot fit. *)
  Alcotest.(check bool) "no seat left" true
    (Pw.submit pw (Travel.plain_txn (user "goofy" "-")) = `Rejected);
  Alcotest.(check int) "rejection preserves worlds" 4 (Pw.world_count pw)

let test_read_collapse_picks_majority_world_set () =
  let store = Flights.fresh_store (geometry 1) in
  let pw = Pw.create (Relational.Store.db store) in
  ignore (Pw.submit pw (Travel.plain_txn (user "mickey" "-")));
  Alcotest.(check int) "3 worlds" 3 (Pw.world_count pw);
  let answers = Pw.read_collapse pw (Travel.seat_query (user "mickey" "-")) in
  Alcotest.(check int) "one concrete answer" 1 (List.length answers);
  (* All remaining worlds agree on the read. *)
  let answers2 = Pw.read_all pw (Travel.seat_query (user "mickey" "-")) in
  Alcotest.(check int) "worlds agree after collapse" 1 (List.length answers2)

(* The headline cross-validation: run the same random transaction stream
   through the engine (strict mode, unbounded k) and the explicit worlds;
   decisions must coincide, and after grounding everything the engine's
   concrete database must be one of the reference worlds. *)
let prop_engine_matches_worlds =
  let open QCheck in
  let spec_gen =
    Gen.list_size (Gen.int_range 1 7)
      (Gen.map (fun (w, e) -> (w mod 5, e)) (Gen.pair Gen.small_nat Gen.bool))
  in
  Test.make ~name:"engine decisions = possible worlds; collapse lands in set" ~count:60
    (make spec_gen ~print:(fun l ->
         String.concat ";" (List.map (fun (w, e) -> Printf.sprintf "%d%c" w (if e then 'e' else 'p')) l)))
    (fun specs ->
      let store = Flights.fresh_store (geometry 1) in
      let config =
        { Qdb.default_config with serializability = Qdb.Strict; k = 1000 }
      in
      let qdb = Qdb.create ~config store in
      let pw = Pw.create (Relational.Store.db store) in
      let users = [| "a"; "b"; "c"; "d"; "e" |] in
      let agree = ref true in
      List.iteri
        (fun i (who, entangled) ->
          if !agree then begin
            let name = Printf.sprintf "%s%d" users.(who) i in
            let partner = users.((who + 1) mod 5) in
            let u = { Travel.name; partner; flight = 0 } in
            (* Entangled txns only add optional atoms — the hard body is the
               same; both sides must agree regardless. *)
            let txn = if entangled then Travel.entangled_txn u else Travel.plain_txn u in
            let txn = { txn with Rtxn.trigger = Rtxn.On_demand } in
            let engine_ok =
              match Qdb.submit qdb txn with
              | Qdb.Committed _ -> true
              | Qdb.Rejected _ | Qdb.Overloaded _ -> false
            in
            let worlds_ok = Pw.submit pw txn = `Committed in
            if engine_ok <> worlds_ok then agree := false
          end)
        specs;
      if not !agree then false
      else begin
        ignore (Qdb.ground_all qdb);
        (* The grounded database must be a member world (travel relations
           only; the engine's store also has the pending table). *)
        Pw.contains_world pw
          ~relations:[ "Flights"; "Available"; "Bookings"; "Adjacent" ]
          (Qdb.db qdb)
      end)

let suite =
  [ Alcotest.test_case "Figure 2 evolution" `Quick test_figure2;
    Alcotest.test_case "collapse retains majority worlds" `Quick
      test_read_collapse_picks_majority_world_set;
    QCheck_alcotest.to_alcotest prop_engine_matches_worlds;
  ]

(* Tests for the coordination profiler: cross-domain span-context
   propagation through the pool, the per-admission flight recorder
   (ring wraparound, slow dumps, behaviour invariance), the rejection
   observability harness, and the p999 histogram exports. *)

module Trace = Obs.Trace
module Flight = Obs.Flight
module Json = Obs.Json
module Export = Obs.Export
module Registry = Obs.Registry
module Histogram = Obs.Histogram
module Qdb = Quantum.Qdb
module Travel = Workload.Travel
module Flights = Workload.Flights

let with_tracing f =
  Trace.enable ();
  Fun.protect f ~finally:Trace.disable

let with_recorder ?capacity ?slow_threshold_ns f =
  Flight.enable ?capacity ?slow_threshold_ns ();
  Fun.protect f ~finally:Flight.disable

let mem name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ name)

let num j =
  match Json.to_number j with
  | Some x -> x
  | None -> Alcotest.fail "expected a number"

let str j =
  match Json.to_str j with
  | Some s -> s
  | None -> Alcotest.fail "expected a string"

(* -- Cross-domain causal tracing ---------------------------------------------- *)

(* Both jobs must be in flight at once, which forces them onto distinct
   domains (the caller helps drain, so a 2-domain pool has exactly two
   execution contexts).  Rendezvous, not sleep: deterministic. *)
let barrier n =
  let m = Mutex.create () and c = Condition.create () in
  let arrived = ref 0 in
  fun () ->
    Mutex.lock m;
    incr arrived;
    if !arrived >= n then Condition.broadcast c
    else while !arrived < n do Condition.wait c m done;
    Mutex.unlock m

let test_ctx_propagation_two_domains () =
  with_tracing @@ fun () ->
  let pool = Par.Pool.create ~domains:2 () in
  let sync = barrier 2 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      ignore
        (Trace.span ~cat:"test" "outer" (fun () ->
             Par.Pool.map pool
               (fun i ->
                 sync ();
                 Trace.span ~cat:"test" "jobwork" (fun () -> i * 10))
               [ 1; 2 ])));
  let evs = Trace.events () in
  let spans name = List.filter (fun (e : Trace.event) -> e.Trace.name = name) evs in
  let one name =
    match spans name with
    | [ e ] -> e
    | l -> Alcotest.fail (Printf.sprintf "want exactly one %s span, got %d" name (List.length l))
  in
  let outer = one "outer" in
  let fanout = one "pool.fanout" in
  let jobs = spans "pool.job" in
  let works = spans "jobwork" in
  let waits = spans "pool.queue_wait" in
  Alcotest.(check int) "two pool.job spans" 2 (List.length jobs);
  Alcotest.(check int) "two jobwork spans" 2 (List.length works);
  Alcotest.(check int) "two queue-wait spans" 2 (List.length waits);
  (* Parent links: outer -> fanout -> job -> jobwork, queue waits under
     the fanout — even for the job that ran on the worker domain. *)
  Alcotest.(check int) "fanout parents to outer" outer.Trace.id fanout.Trace.parent;
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check int) "job parents to fanout" fanout.Trace.id e.Trace.parent)
    (jobs @ waits);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "jobwork parents to some pool.job" true
        (List.exists (fun (j : Trace.event) -> j.Trace.id = e.Trace.parent) jobs))
    works;
  (* The barrier forced the two jobs onto distinct domains. *)
  (match jobs with
   | [ a; b ] ->
     Alcotest.(check bool) "jobs on distinct domain tracks" true (a.Trace.tid <> b.Trace.tid)
   | _ -> assert false);
  (* The Chrome export parses back, carries the causal args, and emits a
     flow arrow for the cross-domain hop. *)
  let j = Json.of_string (Export.chrome_trace_string evs) in
  let exported = Json.to_list (mem "traceEvents" j) in
  let fanout_json =
    List.find
      (fun e ->
        match Json.member "name" e with Some (Json.Str "pool.fanout") -> true | _ -> false)
      exported
  in
  Alcotest.(check (float 0.)) "span_id arg survives export"
    (float_of_int fanout.Trace.id)
    (num (mem "span_id" (mem "args" fanout_json)));
  Alcotest.(check (float 0.)) "parent arg survives export"
    (float_of_int outer.Trace.id)
    (num (mem "parent" (mem "args" fanout_json)));
  let flow ph =
    List.filter
      (fun e -> match Json.member "ph" e with Some (Json.Str p) -> p = ph | _ -> false)
      exported
  in
  Alcotest.(check bool) "flow start emitted" true (flow "s" <> []);
  Alcotest.(check int) "flow starts and ends pair up" (List.length (flow "s"))
    (List.length (flow "f"))

(* -- Flight recorder ----------------------------------------------------------- *)

let record_n n =
  for i = 0 to n - 1 do
    Flight.begin_admission ~txn_id:i ~label:(Printf.sprintf "t%d" i);
    Flight.end_admission ~outcome:"committed" ~solver_nodes:0 ~solver_candidates:0
  done

let test_ring_wraparound () =
  with_recorder ~capacity:16 @@ fun () ->
  record_n 19;
  let records = Flight.records () in
  Alcotest.(check int) "ring holds capacity" 16 (List.length records);
  Alcotest.(check int) "recorded counts everything" 19 (Flight.recorded ());
  Alcotest.(check int) "dropped = overflow" 3 (Flight.dropped ());
  (* Oldest-first and the survivors are the LAST 16 admissions. *)
  Alcotest.(check (list int)) "survivors are the newest, in order"
    (List.init 16 (fun i -> i + 3))
    (List.map (fun (r : Flight.record) -> r.Flight.txn_id) records)

let test_slow_dump_trigger () =
  with_tracing @@ fun () ->
  with_recorder ~slow_threshold_ns:0L @@ fun () ->
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 4; dest = "LA" } in
  let qdb = Qdb.create store in
  List.iteri
    (fun i _ ->
      let u = { Travel.name = Printf.sprintf "u%d" i; partner = "-"; flight = 0 } in
      ignore (Qdb.submit qdb (Travel.plain_txn u)))
    (List.init 10 Fun.id);
  let dumps = Flight.slow_dumps () in
  (* Threshold 0 marks every admission slow; the dump list caps at 8. *)
  Alcotest.(check int) "dump cap" 8 (List.length dumps);
  Alcotest.(check bool) "dumps carry their trace window" true
    (List.exists (fun (_, events) -> events <> []) dumps);
  List.iter
    (fun ((r : Flight.record), _) ->
      Alcotest.(check bool) "dumped record has time" true (r.Flight.total_ns >= 0))
    dumps

(* Recorder + tracing must never change admission outcomes.  Run the same
   over-capacity stream (16 travellers, 6 seats) instrumented and bare. *)
let overcapacity_outcomes () =
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let qdb = Qdb.create store in
  List.map
    (fun i ->
      let u = { Travel.name = Printf.sprintf "u%d" i; partner = "-"; flight = 0 } in
      match Qdb.submit qdb (Travel.plain_txn u) with
      | Qdb.Committed _ -> true
      | Qdb.Rejected _ | Qdb.Overloaded _ -> false)
    (List.init 16 Fun.id)

let test_recorder_does_not_change_outcomes () =
  let bare = overcapacity_outcomes () in
  let instrumented =
    with_tracing @@ fun () ->
    with_recorder @@ fun () -> overcapacity_outcomes ()
  in
  Alcotest.(check (list bool)) "bit-identical admission outcomes" bare instrumented;
  Alcotest.(check int) "over-capacity stream does reject" 6
    (List.length (List.filter Fun.id bare))

let test_rejection_harness () =
  let s = Harness.Rejection.run ~quiet:true () in
  Alcotest.(check int) "committed = seats" 6 s.Harness.Rejection.committed;
  Alcotest.(check int) "rejected = overflow" 10 s.Harness.Rejection.rejected;
  Alcotest.(check int) "a span per rejection" 10 s.Harness.Rejection.rejection_spans;
  Alcotest.(check int) "a record per rejection" 10 s.Harness.Rejection.rejected_records

(* Nested [time] frames attribute exclusive self time: the inner phase's
   elapsed time never double-counts into the outer phase. *)
let test_exclusive_phase_nesting () =
  with_recorder @@ fun () ->
  let spin_ns target =
    let t0 = Obs.Mclock.now_ns () in
    while Int64.compare (Obs.Mclock.elapsed_ns t0) target < 0 do
      ignore (Sys.opaque_identity (succ 0))
    done
  in
  let t0 = Obs.Mclock.now_ns () in
  Flight.time Flight.Compose (fun () ->
      spin_ns 3_000_000L;
      Flight.time Flight.Solve (fun () -> spin_ns 3_000_000L);
      spin_ns 1_000_000L);
  let elapsed = Int64.to_int (Obs.Mclock.elapsed_ns t0) in
  let total ph = List.assq ph (Flight.totals ()) in
  let compose = total Flight.Compose and solve = total Flight.Solve in
  Alcotest.(check bool) "solve saw its spin" true (solve >= 2_500_000);
  Alcotest.(check bool) "compose saw its spins" true (compose >= 3_000_000);
  Alcotest.(check bool) "compose excludes solve" true (compose + solve <= elapsed + 500_000);
  Alcotest.(check int) "everything attributed to the two phases"
    (compose + solve) (Flight.total_attributed_ns ())

(* -- p999 exports -------------------------------------------------------------- *)

let skewed_registry () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "qdb.submit.latency" in
  for _ = 1 to 997 do Histogram.observe h 1e-4 done;
  for _ = 1 to 3 do Histogram.observe h 5e-2 done;
  reg

let test_p999_in_json_snapshot () =
  let j = Json.of_string (Export.json_snapshot_string (skewed_registry ())) in
  let h = mem "qdb.submit.latency" (mem "histograms" j) in
  let p99 = num (mem "p99_s" h) and p999 = num (mem "p999_s" h) in
  Alcotest.(check bool) "p999 present and >= p99" true (p999 >= p99);
  (* Three 50ms outliers in 1000 samples sit past the 99.9th percentile
     rank but nowhere near the p99. *)
  Alcotest.(check bool) "p999 sees the tail" true (p999 > 1e-3);
  Alcotest.(check bool) "p99 does not" true (p99 < 1e-3)

let test_p999_in_prometheus () =
  let text = Export.prometheus (skewed_registry ()) in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "p999 gauge line" true (contains "qdb_submit_latency_p999");
  Alcotest.(check bool) "p999 type line" true
    (contains "# TYPE qdb_submit_latency_p999 gauge")

let suite =
  [ Alcotest.test_case "ctx propagation across 2 domains" `Quick
      test_ctx_propagation_two_domains;
    Alcotest.test_case "flight ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "slow-admission dumps" `Quick test_slow_dump_trigger;
    Alcotest.test_case "recorder does not change outcomes" `Quick
      test_recorder_does_not_change_outcomes;
    Alcotest.test_case "rejection observability harness" `Quick test_rejection_harness;
    Alcotest.test_case "exclusive phase nesting" `Quick test_exclusive_phase_nesting;
    Alcotest.test_case "p999 in json snapshot" `Quick test_p999_in_json_snapshot;
    Alcotest.test_case "p999 in prometheus" `Quick test_p999_in_prometheus;
  ]

(* Tests for the quantum database engine: admission, reads under the three
   policies, blind writes, serializability modes, the k-bound, partner
   triggers and partitioning. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Store = Relational.Store
module Wal = Relational.Wal
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel
open Logic

let geometry rows flights = { Flights.flights; rows_per_flight = rows; dest = "LA" }

let fresh_qdb ?config ?(rows = 2) ?(flights = 1) () =
  let store = Flights.fresh_store (geometry rows flights) in
  Qdb.create ?config store

let user name partner flight = { Travel.name; partner; flight }

let committed = function
  | Qdb.Committed _ -> true
  | Qdb.Rejected _ | Qdb.Overloaded _ -> false

let test_commit_until_full () =
  let qdb = fresh_qdb ~rows:1 () in
  (* 3 seats on the single flight; plain bookings. *)
  let submit name = Qdb.submit qdb (Travel.plain_txn (user name "-" 0)) in
  Alcotest.(check bool) "1st" true (committed (submit "a"));
  Alcotest.(check bool) "2nd" true (committed (submit "b"));
  Alcotest.(check bool) "3rd" true (committed (submit "c"));
  Alcotest.(check bool) "4th rejected" false (committed (submit "d"));
  Alcotest.(check int) "three pending" 3 (Qdb.pending_count qdb);
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb);
  (* Nothing is in Bookings yet: assignment is deferred. *)
  Alcotest.(check int) "bookings empty pre-grounding" 0
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"));
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "bookings after grounding" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"));
  Alcotest.(check int) "no pending left" 0 (Qdb.pending_count qdb)

let test_rejection_leaves_state_intact () =
  let qdb = fresh_qdb ~rows:1 () in
  List.iter (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0)))) [ "a"; "b"; "c" ];
  let before_pending = Qdb.pending_count qdb in
  (match Qdb.submit qdb (Travel.plain_txn (user "d" "-" 0)) with
   | Qdb.Rejected _ | Qdb.Overloaded _ -> ()
   | Qdb.Committed _ -> Alcotest.fail "overbooked");
  Alcotest.(check int) "pending unchanged" before_pending (Qdb.pending_count qdb);
  Alcotest.(check bool) "invariant still holds" true (Qdb.invariant_holds qdb);
  (* Earlier commitments still ground fine. *)
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "three booked" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

let test_read_collapse_and_repeatability () =
  let config = { Qdb.default_config with read_policy = Qdb.Collapse } in
  let qdb = fresh_qdb ~config ~rows:2 () in
  let u = user "mickey" "-" 0 in
  ignore (Qdb.submit qdb (Travel.plain_txn u));
  Alcotest.(check int) "pending before read" 1 (Qdb.pending_count qdb);
  let answers = Qdb.read qdb (Travel.seat_query u) in
  Alcotest.(check int) "one seat answer" 1 (List.length answers);
  Alcotest.(check int) "read collapsed the pending txn" 0 (Qdb.pending_count qdb);
  (* Read repeatability: the same query returns the same tuple. *)
  let answers2 = Qdb.read qdb (Travel.seat_query u) in
  Alcotest.(check bool) "repeatable" true
    (List.equal Tuple.equal answers answers2)

let test_read_impact_is_selective () =
  let qdb = fresh_qdb ~rows:2 ~flights:2 () in
  let u0 = user "a" "-" 0 and u1 = user "b" "-" 1 in
  ignore (Qdb.submit qdb (Travel.plain_txn u0));
  ignore (Qdb.submit qdb (Travel.plain_txn u1));
  Alcotest.(check int) "two pending" 2 (Qdb.pending_count qdb);
  (* Reading a's seat must not collapse b's booking. *)
  ignore (Qdb.read qdb (Travel.seat_query u0));
  Alcotest.(check int) "only a collapsed" 1 (Qdb.pending_count qdb);
  let remaining = Qdb.pending qdb in
  Alcotest.(check string) "b still pending" "b" (List.hd remaining).Rtxn.label

let test_read_peek_fixes_nothing () =
  let config = { Qdb.default_config with read_policy = Qdb.Peek } in
  let qdb = fresh_qdb ~config ~rows:2 () in
  let u = user "mickey" "-" 0 in
  ignore (Qdb.submit qdb (Travel.plain_txn u));
  let answers = Qdb.read qdb (Travel.seat_query u) in
  Alcotest.(check int) "peek sees a planned seat" 1 (List.length answers);
  Alcotest.(check int) "still pending" 1 (Qdb.pending_count qdb);
  Alcotest.(check int) "extensional bookings untouched" 0
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

let test_read_expose_returns_possible_values () =
  let config = { Qdb.default_config with read_policy = Qdb.Expose } in
  let qdb = fresh_qdb ~config ~rows:1 () in
  (* 3 free seats; one pending booking: the seat read has 3 possible
     answers across worlds. *)
  let u = user "mickey" "-" 0 in
  ignore (Qdb.submit qdb (Travel.plain_txn u));
  let answers = Qdb.read qdb (Travel.seat_query u) in
  Alcotest.(check int) "three possible seats" 3 (List.length answers);
  Alcotest.(check int) "still pending" 1 (Qdb.pending_count qdb)

let test_blind_write_admission () =
  let qdb = fresh_qdb ~rows:1 () in
  (* Three seats, three pending bookings: every seat is spoken for. *)
  List.iter (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0)))) [ "a"; "b"; "c" ];
  (* An external write stealing a seat must be refused. *)
  let steal = [ Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int 0 ]) ] in
  Alcotest.(check bool) "conflicting write refused" true (Result.is_error (Qdb.write qdb steal));
  Alcotest.(check bool) "seat still there" true
    (Database.mem_tuple (Qdb.db qdb) "Available" (Tuple.of_list [ Value.Int 0; Value.Int 0 ]));
  (* A write the pending set can absorb is accepted: add a seat, then
     stealing one is fine. *)
  let add = [ Database.Insert ("Available", Tuple.of_list [ Value.Int 0; Value.Int 99 ]) ] in
  Alcotest.(check bool) "benign write ok" true (Qdb.write qdb add = Ok ());
  Alcotest.(check bool) "now stealing is absorbable" true (Qdb.write qdb steal = Ok ());
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb);
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "all grounded" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

let test_strict_grounds_prefix () =
  let config = { Qdb.default_config with serializability = Qdb.Strict } in
  let qdb = fresh_qdb ~config ~rows:2 () in
  List.iter (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0)))) [ "a"; "b"; "c" ];
  (* Grounding c (arrival position 2) must ground a and b first. *)
  let groundings = Qdb.ground qdb 2 in
  Alcotest.(check int) "whole prefix grounded" 3 (List.length groundings);
  Alcotest.(check int) "none pending" 0 (Qdb.pending_count qdb)

let test_semantic_grounds_only_target () =
  let config = { Qdb.default_config with serializability = Qdb.Semantic } in
  let qdb = fresh_qdb ~config ~rows:2 () in
  List.iter (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0)))) [ "a"; "b"; "c" ];
  let groundings = Qdb.ground qdb 2 in
  Alcotest.(check int) "only the target grounded" 1 (List.length groundings);
  Alcotest.(check int) "two still pending" 2 (Qdb.pending_count qdb);
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb);
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "rest ground later" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

let test_k_bound_forces_grounding () =
  let config = { Qdb.default_config with k = 2 } in
  let qdb = fresh_qdb ~config ~rows:2 () in
  List.iter (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-" 0)))) [ "a"; "b"; "c"; "d" ];
  Alcotest.(check bool) "pending capped at k" true (Qdb.max_partition_size qdb <= 2);
  Alcotest.(check bool) "forced groundings happened" true
    ((Qdb.metrics qdb).Quantum.Metrics.forced_groundings > 0);
  (* The oldest were grounded: their bookings exist. *)
  Alcotest.(check bool) "oldest booked" true (Flights.booking_of (Qdb.db qdb) "a" <> None)

let test_partition_independence () =
  let qdb = fresh_qdb ~rows:2 ~flights:3 () in
  List.iteri
    (fun i f -> ignore (Qdb.submit qdb (Travel.plain_txn (user (Printf.sprintf "u%d" i) "-" f))))
    [ 0; 1; 2; 0; 1; 2 ];
  (* One partition per flight. *)
  Alcotest.(check int) "three partitions" 3 (Qdb.partition_count qdb);
  Alcotest.(check int) "each holds two" 2 (Qdb.max_partition_size qdb)

let test_partition_merge_on_bridging_txn () =
  let qdb = fresh_qdb ~rows:2 ~flights:2 () in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-" 0)));
  ignore (Qdb.submit qdb (Travel.plain_txn (user "b" "-" 1)));
  Alcotest.(check int) "two partitions" 2 (Qdb.partition_count qdb);
  (* A flight-agnostic booking unifies with both partitions. *)
  let f = Term.V (Term.fresh_var "f") and s = Term.V (Term.fresh_var "s") in
  let bridging =
    Rtxn.make ~label:"c"
      ~hard:[ Atom.make "Available" [ f; s ] ]
      ~updates:
        [ Rtxn.Del (Atom.make "Available" [ f; s ]);
          Rtxn.Ins (Atom.make "Bookings" [ Term.str "c"; f; s ]) ]
      ()
  in
  ignore (Qdb.submit qdb bridging);
  Alcotest.(check int) "merged into one" 1 (Qdb.partition_count qdb);
  Alcotest.(check bool) "merge counted" true
    ((Qdb.metrics qdb).Quantum.Metrics.partition_merges > 0)

let test_partner_trigger () =
  let qdb = fresh_qdb ~rows:2 () in
  let a = user "a" "b" 0 and b = user "b" "a" 0 in
  ignore (Qdb.submit qdb (Travel.entangled_txn a));
  Alcotest.(check int) "a waits for b" 1 (Qdb.pending_count qdb);
  ignore (Qdb.submit qdb (Travel.entangled_txn b));
  (* Both grounded on partner arrival, adjacent seats. *)
  Alcotest.(check int) "both grounded" 0 (Qdb.pending_count qdb);
  (match Flights.booking_of (Qdb.db qdb) "a", Flights.booking_of (Qdb.db qdb) "b" with
   | Some (f1, s1), Some (f2, s2) ->
     Alcotest.(check int) "same flight" f1 f2;
     Alcotest.(check bool) "adjacent" true (Flights.seats_adjacent (Qdb.db qdb) s1 s2)
   | _ -> Alcotest.fail "both should be booked")

(* Goofy already holds a concrete seat; Mickey's optional adjacency must
   bind to it — Figure 1's scenario. *)
let test_figure1_scenario () =
  let store = Flights.fresh_store (geometry 2 1) in
  let qdb = Qdb.create store in
  (* Goofy books seat 1 on flight 0 directly. *)
  Alcotest.(check bool) "goofy booked" true
    (Travel.book store { Travel.name = "goofy"; partner = "mickey"; flight = 0 } 1);
  (* Mickey's entangled request must land adjacent to seat 1 (seat 0 or 2). *)
  let mickey = user "mickey" "goofy" 0 in
  ignore (Qdb.submit qdb (Travel.entangled_txn mickey));
  ignore (Qdb.ground qdb 0);
  (match Flights.booking_of (Qdb.db qdb) "mickey" with
   | Some (0, s) ->
     Alcotest.(check bool) "adjacent to goofy" true (Flights.seats_adjacent (Qdb.db qdb) s 1)
   | _ -> Alcotest.fail "mickey should be booked on flight 0")

let test_group_booking () =
  (* A family of three books in one transaction; with free rows the
     OPTIONAL full-row preference must hold. *)
  let qdb = fresh_qdb ~rows:3 () in
  let members = [ "ma"; "pa"; "kid" ] in
  (match Qdb.submit qdb (Travel.group_txn ~members ~flight:0 ()) with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "group rejected: %s" r);
  Alcotest.(check bool) "family in one row" true
    (Travel.group_coordinated (Qdb.db qdb) members);
  (* Group of two behaves like a couple. *)
  (match Qdb.submit qdb (Travel.group_txn ~members:[ "x"; "y" ] ~flight:0 ()) with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "pair rejected: %s" r);
  Alcotest.(check bool) "pair adjacent" true (Travel.group_coordinated (Qdb.db qdb) [ "x"; "y" ])

let test_group_degrades_gracefully () =
  (* One row of three with the middle seat pre-booked: a family of three
     still commits (hard body only needs three seats across the flight),
     but cannot sit together. *)
  let qdb = fresh_qdb ~rows:2 () in
  let store_booked =
    Qdb.write qdb
      [ Relational.Database.Delete
          ("Available", Relational.Tuple.of_list [ Value.Int 0; Value.Int 1 ]);
        Relational.Database.Insert
          ("Bookings", Relational.Tuple.of_list [ Value.Str "stranger"; Value.Int 0; Value.Int 1 ]);
      ]
  in
  Alcotest.(check bool) "stranger takes middle seat of row 0" true (store_booked = Ok ());
  let members = [ "ma"; "pa"; "kid" ] in
  (match Qdb.submit qdb (Travel.group_txn ~members ~flight:0 ()) with
   | Qdb.Committed id ->
     ignore (Qdb.ground qdb id);
     (* The full second row is free: the family should take it. *)
     Alcotest.(check bool) "family uses the intact row" true
       (Travel.group_coordinated (Qdb.db qdb) members)
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "group rejected: %s" r);
  (* Now only fragmented seats remain; a second family commits but cannot
     chain. *)
  (match Qdb.submit qdb (Travel.group_txn ~members:[ "q1"; "q2" ] ~flight:0 ()) with
   | Qdb.Committed id ->
     ignore (Qdb.ground qdb id);
     Alcotest.(check bool) "second group seated but split" true
       (Workload.Flights.booking_of (Qdb.db qdb) "q1" <> None
        && Workload.Flights.booking_of (Qdb.db qdb) "q2" <> None
        && not (Travel.group_coordinated (Qdb.db qdb) [ "q1"; "q2" ]))
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "second group rejected: %s" r)

let test_backend_limit_one () =
  let config = { Qdb.default_config with backend = Qdb.Limit_one_plan 3 } in
  let qdb = fresh_qdb ~config ~rows:1 () in
  let submit n = Qdb.submit qdb (Travel.plain_txn (user n "-" 0)) in
  Alcotest.(check bool) "commits" true (committed (submit "a") && committed (submit "b"));
  Alcotest.(check bool) "rejects when full" false
    (committed (submit "c") && committed (submit "d"));
  ignore (Qdb.ground_all qdb);
  Alcotest.(check bool) "grounded fine" true (Flights.booking_of (Qdb.db qdb) "a" <> None)

let test_backend_sat () =
  let config = { Qdb.default_config with backend = Qdb.Sat_backend; check_inserts = false } in
  let qdb = fresh_qdb ~config ~rows:1 () in
  let submit n = Qdb.submit qdb (Travel.plain_txn (user n "-" 0)) in
  Alcotest.(check bool) "three commits" true
    (committed (submit "a") && committed (submit "b") && committed (submit "c"));
  Alcotest.(check bool) "fourth rejected" false (committed (submit "d"));
  ignore (Qdb.ground_all qdb);
  Alcotest.(check int) "grounded" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb) "Bookings"))

let suite =
  [ Alcotest.test_case "commit until full" `Quick test_commit_until_full;
    Alcotest.test_case "rejection leaves state intact" `Quick test_rejection_leaves_state_intact;
    Alcotest.test_case "read collapse + repeatability" `Quick test_read_collapse_and_repeatability;
    Alcotest.test_case "read impact selective" `Quick test_read_impact_is_selective;
    Alcotest.test_case "read peek" `Quick test_read_peek_fixes_nothing;
    Alcotest.test_case "read expose" `Quick test_read_expose_returns_possible_values;
    Alcotest.test_case "blind write admission" `Quick test_blind_write_admission;
    Alcotest.test_case "strict grounds prefix" `Quick test_strict_grounds_prefix;
    Alcotest.test_case "semantic grounds target" `Quick test_semantic_grounds_only_target;
    Alcotest.test_case "k-bound forces grounding" `Quick test_k_bound_forces_grounding;
    Alcotest.test_case "partition independence" `Quick test_partition_independence;
    Alcotest.test_case "partition merge" `Quick test_partition_merge_on_bridging_txn;
    Alcotest.test_case "partner trigger" `Quick test_partner_trigger;
    Alcotest.test_case "Figure 1 scenario" `Quick test_figure1_scenario;
    Alcotest.test_case "group booking" `Quick test_group_booking;
    Alcotest.test_case "group degrades gracefully" `Quick test_group_degrades_gracefully;
    Alcotest.test_case "limit-one backend" `Quick test_backend_limit_one;
    Alcotest.test_case "sat backend" `Quick test_backend_sat;
  ]

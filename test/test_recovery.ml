(* Crash-recovery tests (paper Section 4, "Recovery"): pending resource
   transactions survive a crash through the pending-transactions table;
   the rebuilt engine has the same pending set, keeps the invariant, and
   can still ground everything.  Includes failure injection around the
   commit point. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Store = Relational.Store
module Wal = Relational.Wal
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel

let geometry rows = { Flights.flights = 1; rows_per_flight = rows; dest = "LA" }
let user name partner = { Travel.name; partner; flight = 0 }

let test_recover_pending () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  List.iter
    (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-"))))
    [ "a"; "b"; "c" ];
  ignore (Qdb.ground qdb 0);
  Alcotest.(check int) "two pending pre-crash" 2 (Qdb.pending_count qdb);
  (* Crash: all in-memory state gone; recover from the log. *)
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "two pending post-crash" 2 (Qdb.pending_count qdb');
  Alcotest.(check bool) "invariant restored" true (Qdb.invariant_holds qdb');
  let labels = List.map (fun t -> t.Rtxn.label) (Qdb.pending qdb') |> List.sort String.compare in
  Alcotest.(check (list string)) "same pending transactions" [ "b"; "c" ] labels;
  (* Grounded booking survived. *)
  Alcotest.(check bool) "a's booking durable" true (Flights.booking_of (Qdb.db qdb') "a" <> None);
  (* The recovered engine still grounds everything. *)
  ignore (Qdb.ground_all qdb');
  Alcotest.(check int) "all booked" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb') "Bookings"));
  Alcotest.(check int) "no pending" 0 (Qdb.pending_count qdb')

let test_recover_is_idempotent () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  let once = Qdb.recover backend in
  let twice = Qdb.recover backend in
  Alcotest.(check int) "same pending count" (Qdb.pending_count once) (Qdb.pending_count twice);
  Alcotest.(check bool) "same database" true (Database.equal (Qdb.db once) (Qdb.db twice))

let test_recovered_ids_do_not_collide () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  ignore (Qdb.submit qdb (Travel.plain_txn (user "b" "-")));
  let qdb' = Qdb.recover backend in
  (* New submissions must not collide with recovered ids. *)
  (match Qdb.submit qdb' (Travel.plain_txn (user "c" "-")) with
   | Qdb.Committed id -> Alcotest.(check bool) "fresh id" true (id >= 2)
   | Qdb.Rejected _ | Qdb.Overloaded _ -> Alcotest.fail "commit expected");
  ignore (Qdb.ground_all qdb');
  Alcotest.(check int) "three booked" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb') "Bookings"))

(* Failure injection: crash with a torn WAL batch — the last pending
   insert is half-written.  Recovery must drop the torn batch and keep a
   consistent prefix. *)
let test_torn_commit () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  (* Simulate the crash mid-commit of "b": write Begin+Op, no Commit. *)
  let row =
    Tuple.of_list [ Value.Int 99; Value.Str "(99 b () () () () () on-demand)" ]
  in
  backend.Wal.append
    (Relational.Sexp.to_string (Wal.record_to_sexp (Wal.Begin 999)));
  backend.Wal.append
    (Relational.Sexp.to_string
       (Wal.record_to_sexp (Wal.Op (Database.Insert (Qdb.pending_table_name, row)))));
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "only the acknowledged txn recovered" 1 (Qdb.pending_count qdb');
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb')

(* -- WAL v2 damage cases (fixed seeds, deterministic) ----------------------- *)

(* A corrupted tail must recover leniently to the last complete batch
   with a non-empty recovery report — and raise Wal.Corrupt in strict
   mode instead. *)
let test_corrupt_tail_lenient_and_strict () =
  let build () =
    let backend = Wal.mem_backend () in
    let store = Flights.fresh_store ~backend (geometry 2) in
    let qdb = Qdb.create store in
    ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
    ignore (Qdb.submit qdb (Travel.plain_txn (user "b" "-")));
    (* Damage the tail: garbage that is neither v2 nor a legacy sexp. *)
    backend.Wal.append "42 deadbeef (Begin (17";
    backend
  in
  (* Strict replay refuses the log... *)
  (match Wal.replay_report ~strict:true (Wal.create (build ())) with
   | exception Wal.Corrupt _ -> ()
   | _ -> Alcotest.fail "strict replay should raise Corrupt");
  (* ...lenient recovery keeps both acknowledged transactions and
     reports the drop. *)
  let backend = build () in
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "both pending survive" 2 (Qdb.pending_count qdb');
  (match Qdb.recovery_report qdb' with
   | Some r ->
     Alcotest.(check int) "one record dropped" 1 r.Wal.records_dropped;
     Alcotest.(check bool) "truncation reported" true (r.Wal.truncated_at <> None)
   | None -> Alcotest.fail "recovery report expected");
  (* The damaged tail was physically repaired: the log is clean again. *)
  let qdb'' = Qdb.recover backend in
  (match Qdb.recovery_report qdb'' with
   | Some r -> Alcotest.(check int) "repaired log drops nothing" 0 r.Wal.records_dropped
   | None -> Alcotest.fail "recovery report expected")

(* A silent bit flip in the middle of the log: everything from the
   damaged record on is dropped, the prefix stays consistent. *)
let test_bit_flip_mid_log () =
  let rng = Workload.Prng.create 11 in
  let backend = Wal.mem_backend () in
  let handle, faulty = Workload.Fault.wrap rng backend in
  let store = Flights.fresh_store ~backend:faulty (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  (* Flip a bit inside the next batch, then crash a few appends later. *)
  Workload.Fault.arm handle { Workload.Fault.crash_after = 5; damage = Clean; flip_at = Some 1 };
  (try
     ignore (Qdb.submit qdb (Travel.plain_txn (user "b" "-")));
     ignore (Qdb.submit qdb (Travel.plain_txn (user "c" "-")))
   with Workload.Fault.Crash -> ());
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "only the pre-flip txn survives" 1 (Qdb.pending_count qdb');
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb');
  (match Qdb.recovery_report qdb' with
   | Some r -> Alcotest.(check bool) "records dropped" true (r.Wal.records_dropped > 0)
   | None -> Alcotest.fail "recovery report expected")

(* Crash mid-batch via the fault combinator: the half-written batch is
   dropped, acknowledged batches survive. *)
let test_crash_mid_batch () =
  let rng = Workload.Prng.create 23 in
  let backend = Wal.mem_backend () in
  let handle, faulty = Workload.Fault.wrap rng backend in
  let store = Flights.fresh_store ~backend:faulty (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  (* Each pending insert is a 3-record batch; crash on its middle record. *)
  Workload.Fault.arm handle { Workload.Fault.crash_after = 1; damage = Torn; flip_at = None };
  (try ignore (Qdb.submit qdb (Travel.plain_txn (user "b" "-")))
   with Workload.Fault.Crash -> ());
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "only the acknowledged txn" 1 (Qdb.pending_count qdb');
  let labels = List.map (fun t -> t.Rtxn.label) (Qdb.pending qdb') in
  Alcotest.(check (list string)) "it is a" [ "a" ] labels;
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb')

(* Crash during checkpoint compaction: the segment swap is atomic, so
   recovery sees either the old log or the new one — never a mix. *)
let test_crash_mid_checkpoint () =
  let try_seed seed =
    let rng = Workload.Prng.create seed in
    let backend = Wal.mem_backend () in
    let handle, faulty = Workload.Fault.wrap rng backend in
    let store = Flights.fresh_store ~backend:faulty (geometry 2) in
    let qdb = Qdb.create store in
    ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
    ignore (Qdb.ground_all qdb);
    Workload.Fault.arm handle { Workload.Fault.crash_after = 0; damage = Clean; flip_at = None };
    let crashed = (try Store.checkpoint store; false with Workload.Fault.Crash -> true) in
    Alcotest.(check bool) "checkpoint crashed" true crashed;
    let qdb' = Qdb.recover backend in
    Alcotest.(check bool) "a's booking durable either way" true
      (Flights.booking_of (Qdb.db qdb') "a" <> None);
    Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb');
    (* Whether the swap won or lost the race is PRNG-decided: report
       which, so both paths are known to be exercised. *)
    List.length (backend.Wal.read_all ()) = 1
  in
  (* Seeds chosen so both sides of the atomic-rename race occur. *)
  let outcomes = List.map try_seed [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check bool) "swap-completed path exercised" true (List.mem true outcomes);
  Alcotest.(check bool) "swap-lost path exercised" true (List.mem false outcomes)

(* Appends after a lenient truncation land on the repaired log and are
   durable: recovery after recovery keeps the new writes. *)
let test_truncate_then_append () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  backend.Wal.append "garbage tail";
  let qdb' = Qdb.recover backend in
  ignore (Qdb.submit qdb' (Travel.plain_txn (user "b" "-")));
  let qdb'' = Qdb.recover backend in
  Alcotest.(check int) "both txns durable" 2 (Qdb.pending_count qdb'');
  (match Qdb.recovery_report qdb'' with
   | Some r -> Alcotest.(check int) "clean second recovery" 0 r.Wal.records_dropped
   | None -> Alcotest.fail "recovery report expected")

let test_entangled_trigger_survives_recovery () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.entangled_txn (user "a" "b")));
  Alcotest.(check int) "a waits" 1 (Qdb.pending_count qdb);
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "a still pending" 1 (Qdb.pending_count qdb');
  (* The partner arrives after recovery: both must ground together,
     adjacent. *)
  ignore (Qdb.submit qdb' (Travel.entangled_txn (user "b" "a")));
  Alcotest.(check int) "both grounded" 0 (Qdb.pending_count qdb');
  (match Flights.booking_of (Qdb.db qdb') "a", Flights.booking_of (Qdb.db qdb') "b" with
   | Some (_, s1), Some (_, s2) ->
     Alcotest.(check bool) "adjacent after recovery" true
       (Flights.seats_adjacent (Qdb.db qdb') s1 s2)
   | _ -> Alcotest.fail "both should be booked")

let suite =
  [ Alcotest.test_case "recover pending transactions" `Quick test_recover_pending;
    Alcotest.test_case "recovery idempotent" `Quick test_recover_is_idempotent;
    Alcotest.test_case "recovered ids fresh" `Quick test_recovered_ids_do_not_collide;
    Alcotest.test_case "torn commit dropped" `Quick test_torn_commit;
    Alcotest.test_case "corrupt tail: lenient + strict" `Quick
      test_corrupt_tail_lenient_and_strict;
    Alcotest.test_case "bit flip mid-log" `Quick test_bit_flip_mid_log;
    Alcotest.test_case "crash mid-batch" `Quick test_crash_mid_batch;
    Alcotest.test_case "crash mid-checkpoint" `Quick test_crash_mid_checkpoint;
    Alcotest.test_case "append after truncation" `Quick test_truncate_then_append;
    Alcotest.test_case "entangled trigger survives recovery" `Quick
      test_entangled_trigger_survives_recovery;
  ]

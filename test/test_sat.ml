(* Tests for the DPLL SAT solver and the CNF builder. *)

let test_trivial () =
  Alcotest.(check bool) "empty instance sat" true
    (match Sat.Dpll.solve [] with
     | Sat.Dpll.Sat _ -> true
     | Sat.Dpll.Unsat -> false);
  Alcotest.(check bool) "empty clause unsat" true (Sat.Dpll.solve [ [||] ] = Sat.Dpll.Unsat);
  Alcotest.(check bool) "unit sat" true
    (match Sat.Dpll.solve [ [| 1 |] ] with
     | Sat.Dpll.Sat m -> m.(1)
     | Sat.Dpll.Unsat -> false);
  Alcotest.(check bool) "conflicting units unsat" true
    (Sat.Dpll.solve [ [| 1 |]; [| -1 |] ] = Sat.Dpll.Unsat)

let test_small_instances () =
  (* (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2): forces x1=x2=true. *)
  (match Sat.Dpll.solve [ [| 1; 2 |]; [| -1; 2 |]; [| 1; -2 |] ] with
   | Sat.Dpll.Sat m ->
     Alcotest.(check bool) "x1" true m.(1);
     Alcotest.(check bool) "x2" true m.(2)
   | Sat.Dpll.Unsat -> Alcotest.fail "should be sat");
  (* All four binary clauses over two vars: unsat. *)
  Alcotest.(check bool) "full binary unsat" true
    (Sat.Dpll.solve [ [| 1; 2 |]; [| -1; 2 |]; [| 1; -2 |]; [| -1; -2 |] ] = Sat.Dpll.Unsat)

let test_pigeonhole () =
  (* PHP(3,2): 3 pigeons, 2 holes — classically unsat.  Var p_{i,h} = 2i+h+1. *)
  let var i h = (2 * i) + h + 1 in
  let clauses =
    (* each pigeon in some hole *)
    List.init 3 (fun i -> [| var i 0; var i 1 |])
    @ (* no two pigeons share a hole *)
    List.concat_map
      (fun h ->
        [ [| -var 0 h; -var 1 h |]; [| -var 0 h; -var 2 h |]; [| -var 1 h; -var 2 h |] ])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "php(3,2) unsat" true (Sat.Dpll.solve clauses = Sat.Dpll.Unsat)

let test_cnf_builder () =
  let cnf = Sat.Cnf.create () in
  let a = Sat.Cnf.fresh_var cnf and b = Sat.Cnf.fresh_var cnf and c = Sat.Cnf.fresh_var cnf in
  Sat.Cnf.add_exactly_one cnf [ a; b; c ];
  (* ALO(1) + AMO(3 pairs) = 4 clauses *)
  Alcotest.(check int) "exactly-one clause count" 4 (Sat.Cnf.num_clauses cnf);
  Sat.Cnf.add_clause cnf [ a; Sat.Cnf.neg a ];
  Alcotest.(check int) "tautology dropped" 4 (Sat.Cnf.num_clauses cnf);
  Alcotest.(check bool) "bad literal" true
    (match Sat.Cnf.add_clause cnf [ 99 ] with
     | exception Sat.Cnf.Bad_literal _ -> true
     | _ -> false);
  (match Sat.Dpll.solve (Sat.Cnf.clauses cnf) with
   | Sat.Dpll.Sat m ->
     let count = List.length (List.filter (fun v -> m.(v)) [ a; b; c ]) in
     Alcotest.(check int) "exactly one true" 1 count
   | Sat.Dpll.Unsat -> Alcotest.fail "exactly-one should be sat")

(* Brute-force reference: try all assignments. *)
let brute_force num_vars clauses =
  let rec go v model =
    if v > num_vars then Sat.Dpll.check_model clauses model
    else begin
      model.(v) <- false;
      go (v + 1) model
      ||
      (model.(v) <- true;
       go (v + 1) model)
    end
  in
  go 1 (Array.make (num_vars + 1) false)

let clause_gen num_vars =
  let open QCheck.Gen in
  let lit_gen =
    let* v = int_range 1 num_vars in
    let* sign = bool in
    return (if sign then v else -v)
  in
  list_size (int_range 0 20) (map Array.of_list (list_size (int_range 1 4) lit_gen))

let prop_dpll_agrees_with_brute_force =
  QCheck.Test.make ~name:"dpll = brute force on random 3-sat-ish" ~count:500
    (QCheck.make (clause_gen 6)
       ~print:(fun cs ->
         String.concat " "
           (List.map
              (fun c ->
                "(" ^ String.concat "," (List.map string_of_int (Array.to_list c)) ^ ")")
              cs)))
    (fun clauses ->
      let brute = brute_force 6 clauses in
      match Sat.Dpll.solve ~num_vars:6 clauses with
      | Sat.Dpll.Sat model -> brute && Sat.Dpll.check_model clauses model
      | Sat.Dpll.Unsat -> not brute)

(* --- CDCL --- *)

let cdcl_of ~num_vars clauses =
  let s = Sat.Cdcl.create () in
  for _ = 1 to num_vars do
    ignore (Sat.Cdcl.new_var s)
  done;
  List.iter (Sat.Cdcl.add_clause s) clauses;
  s

let test_cdcl_trivial () =
  Alcotest.(check bool) "empty instance sat" true
    (Sat.Cdcl.solve (cdcl_of ~num_vars:0 []) = Sat.Cdcl.Sat);
  Alcotest.(check bool) "empty clause unsat" true
    (Sat.Cdcl.solve (cdcl_of ~num_vars:1 [ [||] ]) = Sat.Cdcl.Unsat);
  let s = cdcl_of ~num_vars:1 [ [| 1 |] ] in
  Alcotest.(check bool) "unit sat" true (Sat.Cdcl.solve s = Sat.Cdcl.Sat);
  Alcotest.(check bool) "unit model" true (Sat.Cdcl.value s 1);
  Alcotest.(check bool) "conflicting units unsat" true
    (Sat.Cdcl.solve (cdcl_of ~num_vars:1 [ [| 1 |]; [| -1 |] ]) = Sat.Cdcl.Unsat);
  let s = cdcl_of ~num_vars:2 [ [| 1; 2 |]; [| -1; 2 |]; [| 1; -2 |] ] in
  Alcotest.(check bool) "forced sat" true (Sat.Cdcl.solve s = Sat.Cdcl.Sat);
  Alcotest.(check bool) "x1 forced" true (Sat.Cdcl.value s 1);
  Alcotest.(check bool) "x2 forced" true (Sat.Cdcl.value s 2)

let test_cdcl_pigeonhole () =
  (* PHP(6,5): large enough that learning does real work. *)
  let pigeons = 6 and holes = 5 in
  let var i h = (i * holes) + h + 1 in
  let clauses =
    List.init pigeons (fun i -> Array.init holes (fun h -> var i h))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun i ->
              List.filter_map
                (fun j -> if j > i then Some [| -var i h; -var j h |] else None)
                (List.init pigeons Fun.id))
            (List.init pigeons Fun.id))
        (List.init holes Fun.id)
  in
  let s = cdcl_of ~num_vars:(pigeons * holes) clauses in
  Alcotest.(check bool) "php(6,5) unsat" true (Sat.Cdcl.solve s = Sat.Cdcl.Unsat);
  let st = Sat.Cdcl.stats s in
  Alcotest.(check bool) "conflicts happened" true (st.Sat.Cdcl.conflicts > 0);
  Alcotest.(check bool) "clauses learned" true (st.Sat.Cdcl.learned > 0)

let test_cdcl_assumptions () =
  (* Gate two incompatible chunks behind activation literals a=1, b=2:
     a -> x3, b -> ¬x3.  Either alone sat, both together unsat, and the
     instance stays reusable after every answer. *)
  let s = cdcl_of ~num_vars:3 [ [| -1; 3 |]; [| -2; -3 |] ] in
  Alcotest.(check bool) "a alone sat" true
    (Sat.Cdcl.solve ~assumptions:[ 1 ] s = Sat.Cdcl.Sat);
  Alcotest.(check bool) "a implies x3" true (Sat.Cdcl.value s 3);
  Alcotest.(check bool) "b alone sat" true
    (Sat.Cdcl.solve ~assumptions:[ 2 ] s = Sat.Cdcl.Sat);
  Alcotest.(check bool) "b implies not x3" false (Sat.Cdcl.value s 3);
  Alcotest.(check bool) "a+b unsat under assumptions" true
    (Sat.Cdcl.solve ~assumptions:[ 1; 2 ] s = Sat.Cdcl.Unsat);
  Alcotest.(check bool) "still sat unassumed" true (Sat.Cdcl.solve s = Sat.Cdcl.Sat);
  Alcotest.(check bool) "a alone still sat after unsat answer" true
    (Sat.Cdcl.solve ~assumptions:[ 1 ] s = Sat.Cdcl.Sat);
  (* Growing the instance between solves keeps prior state. *)
  let v4 = Sat.Cdcl.new_var s in
  Sat.Cdcl.add_clause s [| -1; v4 |];
  Alcotest.(check bool) "grown instance solves" true
    (Sat.Cdcl.solve ~assumptions:[ 1 ] s = Sat.Cdcl.Sat);
  Alcotest.(check bool) "new implication holds" true (Sat.Cdcl.value s v4)

let test_cdcl_budgets () =
  let pigeons = 7 and holes = 6 in
  let var i h = (i * holes) + h + 1 in
  let clauses =
    List.init pigeons (fun i -> Array.init holes (fun h -> var i h))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun i ->
              List.filter_map
                (fun j -> if j > i then Some [| -var i h; -var j h |] else None)
                (List.init pigeons Fun.id))
            (List.init pigeons Fun.id))
        (List.init holes Fun.id)
  in
  let s = cdcl_of ~num_vars:(pigeons * holes) clauses in
  Alcotest.(check bool) "conflict budget trips" true
    (match Sat.Cdcl.solve ~conflict_limit:3 s with
     | exception Sat.Cdcl.Conflict_budget_exceeded -> true
     | _ -> false);
  Alcotest.(check bool) "expired deadline trips at entry" true
    (match Sat.Cdcl.solve ~deadline_ns:(Obs.Mclock.now_ns ()) s with
     | exception Sat.Cdcl.Timed_out -> true
     | _ -> false);
  (* The instance survived both aborts. *)
  Alcotest.(check bool) "usable after aborts" true (Sat.Cdcl.solve s = Sat.Cdcl.Unsat)

let prop_cdcl_agrees_with_brute_force =
  QCheck.Test.make ~name:"cdcl = brute force on random 3-sat-ish" ~count:500
    (QCheck.make (clause_gen 6)
       ~print:(fun cs ->
         String.concat " "
           (List.map
              (fun c ->
                "(" ^ String.concat "," (List.map string_of_int (Array.to_list c)) ^ ")")
              cs)))
    (fun clauses ->
      let brute = brute_force 6 clauses in
      let s = cdcl_of ~num_vars:6 clauses in
      match Sat.Cdcl.solve s with
      | Sat.Cdcl.Sat ->
        let model = Array.init 7 (fun v -> v > 0 && Sat.Cdcl.value s v) in
        brute && Sat.Dpll.check_model clauses model
      | Sat.Cdcl.Unsat -> not brute)

let prop_cdcl_incremental_assumptions =
  (* One persistent instance; each random instance becomes a chunk gated
     by a fresh activation literal.  Solving under one chunk's assumption
     must agree with brute force on that instance alone — learned clauses
     from earlier chunks may be reused but never change answers. *)
  QCheck.Test.make ~name:"cdcl incremental under assumptions = brute force" ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 6) (clause_gen 5)))
    (fun instances ->
      let s = Sat.Cdcl.create () in
      List.for_all
        (fun clauses ->
          let act = Sat.Cdcl.new_var s in
          let base = Sat.Cdcl.num_vars s in
          let shift c = Array.map (fun l -> if l > 0 then l + base else l - base) c in
          for _ = 1 to 5 do
            ignore (Sat.Cdcl.new_var s)
          done;
          List.iter
            (fun c -> Sat.Cdcl.add_clause s (Array.append [| -act |] (shift c)))
            clauses;
          let brute = brute_force 5 clauses in
          match Sat.Cdcl.solve ~assumptions:[ act ] s with
          | Sat.Cdcl.Sat ->
            let model = Array.init 6 (fun v -> v > 0 && Sat.Cdcl.value s (v + base)) in
            brute && Sat.Dpll.check_model clauses model
          | Sat.Cdcl.Unsat -> not brute)
        instances)

let suite =
  [ Alcotest.test_case "trivial cases" `Quick test_trivial;
    Alcotest.test_case "small instances" `Quick test_small_instances;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
    Alcotest.test_case "cnf builder" `Quick test_cnf_builder;
    QCheck_alcotest.to_alcotest prop_dpll_agrees_with_brute_force;
    Alcotest.test_case "cdcl trivial cases" `Quick test_cdcl_trivial;
    Alcotest.test_case "cdcl pigeonhole" `Quick test_cdcl_pigeonhole;
    Alcotest.test_case "cdcl incremental assumptions" `Quick test_cdcl_assumptions;
    Alcotest.test_case "cdcl budgets" `Quick test_cdcl_budgets;
    QCheck_alcotest.to_alcotest prop_cdcl_agrees_with_brute_force;
    QCheck_alcotest.to_alcotest prop_cdcl_incremental_assumptions;
  ]

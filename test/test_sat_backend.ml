(* The CDCL incremental session as a first-class admission backend, from
   four angles:

   - qcheck: pushing a body chunk-by-chunk into one persistent
     {!Sat.Inc} session is equisatisfiable with an eager flattened
     {!Sat.Encode} of the same conjunction — including after an UNSAT
     answer (a rejection leaves the dropped chunk's clauses behind as
     inert garbage) and across resplits and merges of the chunk
     boundaries;
   - 200 seeded workload traces: [Sat_backend] transcripts are
     bit-identical to the backtracking engine's, alone and under 2- and
     4-domain pools, in both the eager-DPLL and incremental-CDCL modes;
   - governor: an expired deadline surfaces as [Overloaded] under the
     SAT backend, never as a semantic rejection;
   - crash monkey: 50 kill/recover cycles driving the CDCL session
     through WAL recovery, zero violations. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
module Qdb = Quantum.Qdb
module Governor = Quantum.Governor
module Metrics = Quantum.Metrics
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel
module Prng = Workload.Prng
open Logic

(* -- Session pushes vs flattened eager encode ------------------------------- *)

(* Same tiny R/S database as the solver gate. *)
let make_db r_rows s_rows =
  let db = Database.create () in
  let r =
    Database.create_table db
      (Schema.make ~name:"R"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ())
  in
  let s =
    Database.create_table db
      (Schema.make ~name:"S"
         ~columns:[ Schema.column "b" Value.Tint; Schema.column "c" Value.Tint ]
         ())
  in
  List.iter
    (fun (a, b) -> ignore (Relational.Table.insert r (Tuple.of_list [ Value.Int a; Value.Int b ])))
    r_rows;
  List.iter
    (fun (b, c) -> ignore (Relational.Table.insert s (Tuple.of_list [ Value.Int b; Value.Int c ])))
    s_rows;
  db

(* Chunks share a 3-variable pool so equalities and disequalities cross
   chunk boundaries — exactly the shape the session's equality-theory
   repair has to keep consistent across pushes. *)
let pool = Array.init 3 (fun i -> Term.fresh_var (Printf.sprintf "q%d" i))

let chunk_gen =
  let open QCheck.Gen in
  let var_gen = map (fun i -> pool.(i mod 3)) small_nat in
  let term_gen =
    oneof [ map (fun v -> Term.V v) var_gen; map (fun n -> Term.int (n mod 4)) small_nat ]
  in
  let atom_gen =
    let* rel = oneofl [ "R"; "S" ] in
    let* t1 = term_gen and* t2 = term_gen in
    return (Atom.make rel [ t1; t2 ])
  in
  let leaf_gen =
    oneof
      [ map (fun a -> Formula.Atom a) atom_gen;
        (let* t1 = term_gen and* t2 = term_gen in
         return (Formula.Eq (t1, t2)));
        (let* t1 = term_gen and* t2 = term_gen in
         return (Formula.Neq (t1, t2)));
      ]
  in
  let* leaves = list_size (int_range 1 4) leaf_gen in
  let* ors = list_size (int_range 0 1) (list_size (int_range 1 3) leaf_gen) in
  return (Formula.and_ (leaves @ List.map (fun fs -> Formula.or_ fs) ors))

let db_gen =
  let open QCheck.Gen in
  let row_gen = pair (int_range 0 3) (int_range 0 3) in
  pair (list_size (int_range 0 8) row_gen) (list_size (int_range 0 8) row_gen)

let session_case =
  QCheck.make
    QCheck.Gen.(pair (triple chunk_gen chunk_gen chunk_gen) db_gen)
    ~print:(fun ((c1, c2, c3), _) ->
      String.concat " | " (List.map Formula.to_string [ c1; c2; c3 ]))

(* One session, many checks: a session verdict must agree with the eager
   flattened encode of the same conjunction whenever both are native. *)
let agrees session db chunks =
  let eager =
    match Sat.Encode.satisfiable db (Formula.and_ chunks) with
    | verdict -> verdict
    | exception Sat.Encode.Unsupported _ -> None
  in
  match Sat.Inc.check session db ~chunks with
  | Sat.Inc.V_sat _ -> ( match eager with Some v -> v | None -> true)
  | Sat.Inc.V_unsat -> ( match eager with Some v -> not v | None -> true)
  | Sat.Inc.V_unsupported _ -> true

let prop_session_equisatisfiable =
  QCheck.Test.make
    ~name:"inc session = flattened eager encode (push, reject, resplit, merge)" ~count:300
    session_case
    (fun ((c1, c2, c3), (r_rows, s_rows)) ->
      let db = make_db r_rows s_rows in
      let session = Sat.Inc.create () in
      (* Grow the live set one chunk at a time, then re-check earlier
         subsets (a rejected chunk's garbage must stay inert), then the
         same body re-chunked: merged into one chunk and resplit with a
         different boundary.  Every verdict checks against the flattened
         eager encode of exactly the live conjunction. *)
      List.for_all
        (agrees session db)
        [ [ c1 ];
          [ c1; c2 ];
          [ c1 ];
          [ c1; c2; c3 ];
          [ c2; c3 ];
          [ Formula.and_ [ c1; c2 ] ];
          [ Formula.and_ [ c1; c2 ]; c3 ];
          [ Formula.and_ [ c1; c2; c3 ] ];
        ])

(* -- Seeded-trace outcome identity ------------------------------------------ *)

let geometry = { Flights.flights = 2; rows_per_flight = 2; dest = "LA" }
let user name flight = { Travel.name; partner = "-"; flight }

type op =
  | Submit of Travel.user
  | Ground_nth of int
  | Ground_all

let gen_trace rng len =
  List.init len (fun i ->
      let r = Prng.int rng 100 in
      if r < 70 then Submit (user (Printf.sprintf "u%d" i) (Prng.int rng geometry.Flights.flights))
      else if r < 90 then Ground_nth (Prng.int rng 8)
      else Ground_all)

(* Insert-safety checks are off in every config: their negative atoms are
   not SAT-encodable, and identity must compare the backends on the same
   composed body (the sat bench makes the same call). *)
let config backend ~incremental =
  { Qdb.default_config with
    Qdb.k = 6;
    cache_capacity = 2;
    check_inserts = false;
    backend;
    incremental;
  }

let apply_trace ?pool config trace =
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create ~config ?pool store in
  List.map
    (fun op ->
      match op with
      | Submit u ->
        (match Qdb.submit qdb (Travel.plain_txn u) with
         | Qdb.Committed id -> Printf.sprintf "c%d" id
         | Qdb.Rejected _ -> "r"
         | Qdb.Overloaded _ -> "o")
      | Ground_nth n ->
        (match Qdb.pending qdb with
         | [] -> "g-"
         | ps ->
           let txn = List.nth ps (n mod List.length ps) in
           Printf.sprintf "g%d" (List.length (Qdb.ground qdb txn.Rtxn.id)))
      | Ground_all -> Printf.sprintf "G%d" (List.length (Qdb.ground_all qdb)))
    trace

let search = config Qdb.Backtracking ~incremental:true
let cdcl = config Qdb.Sat_backend ~incremental:true
let dpll = config Qdb.Sat_backend ~incremental:false

(* 200 seeded traces, CDCL vs backtracking; the eager-DPLL mode rides on
   the first quarter (it re-encodes from scratch each admission, so the
   equivalence it adds is mostly the encoder's, already heavily covered). *)
let test_sat_trace_identity () =
  for seed = 1 to 200 do
    let trace = gen_trace (Prng.create seed) 12 in
    let reference = apply_trace search trace in
    Alcotest.(check (list string))
      (Printf.sprintf "cdcl = backtracking (seed %d)" seed)
      reference
      (apply_trace cdcl trace);
    if seed <= 50 then
      Alcotest.(check (list string))
        (Printf.sprintf "dpll = backtracking (seed %d)" seed)
        reference
        (apply_trace dpll trace)
  done

(* The same identity must survive partition actors: 2- and 4-domain
   pools submit through the shared-nothing admission path. *)
let test_sat_trace_identity_pooled () =
  let pool2 = Par.Pool.create ~domains:2 () in
  let pool4 = Par.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () ->
      Par.Pool.shutdown pool2;
      Par.Pool.shutdown pool4)
    (fun () ->
      for seed = 1 to 50 do
        let trace = gen_trace (Prng.create seed) 12 in
        let reference = apply_trace search trace in
        Alcotest.(check (list string))
          (Printf.sprintf "cdcl 2-domain pool identical (seed %d)" seed)
          reference
          (apply_trace ~pool:pool2 cdcl trace);
        Alcotest.(check (list string))
          (Printf.sprintf "cdcl 4-domain pool identical (seed %d)" seed)
          reference
          (apply_trace ~pool:pool4 cdcl trace)
      done)

(* -- Governor: budget blowups stay Overloaded -------------------------------- *)

(* A 1 ns deadline has expired by solve entry in both SAT modes (the
   DPLL run checks it before its first decision, the CDCL session at the
   top of [check]); the ladder must exhaust and report [Overloaded] —
   not swallow the timeout as unsatisfiable. *)
let test_sat_deadline_overloads () =
  List.iter
    (fun (name, config) ->
      let store = Flights.fresh_store geometry in
      let qdb = Qdb.create ~config store in
      let gov = Governor.make ~deadline_ns:1L ~max_retries:0 () in
      match Qdb.submit ~governor:gov qdb (Travel.plain_txn (user "late" 0)) with
      | Qdb.Overloaded _ -> ()
      | Qdb.Rejected r ->
        Alcotest.failf "%s: deadline expiry misreported as Rejected: %s" name r
      | Qdb.Committed _ -> Alcotest.failf "%s: committed under an expired deadline" name)
    [ ("cdcl", cdcl); ("dpll", dpll) ]

(* -- Crash monkey ------------------------------------------------------------ *)

(* 50 kill/recover cycles with the CDCL session on the admission path:
   recovery rebuilds the session from the WAL'd pending set, and any
   acked-but-lost or phantom admission shows up as a violation. *)
let test_sat_crash_monkey () =
  let summary = Workload.Crash_monkey.run ~cycles:50 ~seed:31 ~backend:Qdb.Sat_backend () in
  Alcotest.(check (list (pair int string)))
    "no recovery violations under Sat_backend" [] summary.Workload.Crash_monkey.violations

let suite =
  [ QCheck_alcotest.to_alcotest prop_session_equisatisfiable;
    Alcotest.test_case "200 traces: sat backend = backtracking" `Slow test_sat_trace_identity;
    Alcotest.test_case "2/4-domain pools: sat backend identical" `Slow
      test_sat_trace_identity_pooled;
    Alcotest.test_case "expired deadline stays Overloaded under sat" `Quick
      test_sat_deadline_overloads;
    Alcotest.test_case "crash monkey: zero violations under sat" `Slow test_sat_crash_monkey;
  ]

(* Tests for the session layer: commit acknowledgments, the second
   (values-assigned) notification across every grounding trigger, mailbox
   isolation, and thread-safety. *)

module Qdb = Quantum.Qdb
module Session = Quantum.Session
module Flights = Workload.Flights
module Travel = Workload.Travel

let geometry rows = { Flights.flights = 1; rows_per_flight = rows; dest = "LA" }
let fresh ?config ?(rows = 2) () = Session.create ?config (Flights.fresh_store (geometry rows))
let user name partner = { Travel.name; partner; flight = 0 }

let acks notes =
  List.filter (function Session.Committed_ack _ -> true | _ -> false) notes

let assignments notes =
  List.filter_map
    (function Session.Values_assigned v -> Some v | _ -> None)
    notes

let test_commit_ack () =
  let hub = fresh () in
  let mickey = Session.connect hub "mickey" in
  (match Session.submit mickey (Travel.plain_txn (user "mickey" "-")) with
   | Qdb.Committed _ -> ()
   | Qdb.Rejected r | Qdb.Overloaded r -> Alcotest.failf "rejected: %s" r);
  let notes = Session.poll mickey in
  Alcotest.(check int) "one ack" 1 (List.length (acks notes));
  Alcotest.(check int) "no assignment yet (deferred)" 0 (List.length (assignments notes));
  Alcotest.(check int) "mailbox drained" 0 (List.length (Session.poll mickey))

let test_second_notification_on_read () =
  let hub = fresh () in
  let mickey = Session.connect hub "mickey" in
  ignore (Session.submit mickey (Travel.plain_txn (user "mickey" "-")));
  ignore (Session.poll mickey);
  (* The read collapses the booking: the owner gets Values_assigned. *)
  ignore (Session.read mickey (Travel.seat_query (user "mickey" "-")));
  (match assignments (Session.poll mickey) with
   | [ v ] ->
     Alcotest.(check int) "two concrete writes" 2 (List.length v.Session.ops)
   | _ -> Alcotest.fail "expected exactly one Values_assigned")

let test_second_notification_on_partner_arrival () =
  let hub = fresh () in
  let a = Session.connect hub "a" and b = Session.connect hub "b" in
  ignore (Session.submit a (Travel.entangled_txn (user "a" "b")));
  Alcotest.(check int) "a not assigned yet" 0 (List.length (assignments (Session.poll a)));
  (* b's submission grounds both partners: each owner hears about it. *)
  ignore (Session.submit b (Travel.entangled_txn (user "b" "a")));
  (match assignments (Session.poll a) with
   | [ v ] -> Alcotest.(check bool) "a's optionals satisfied" true (v.Session.optionals_satisfied >= 1)
   | _ -> Alcotest.fail "a expected its assignment");
  (match assignments (Session.poll b) with
   | [ _ ] -> ()
   | _ -> Alcotest.fail "b expected its assignment")

let test_second_notification_on_other_clients_read () =
  let hub = fresh () in
  let a = Session.connect hub "a" and nosy = Session.connect hub "nosy" in
  ignore (Session.submit a (Travel.plain_txn (user "a" "-")));
  ignore (Session.poll a);
  (* Someone ELSE reads the whole Bookings table, collapsing a's booking:
     the assignment notice still goes to a, not to the reader. *)
  let q = Quantum.Datalog_parser.parse_query "(u, f, s) :- Bookings(u, f, s)" in
  ignore (Session.read nosy q);
  Alcotest.(check int) "owner notified" 1 (List.length (assignments (Session.poll a)));
  Alcotest.(check int) "reader not notified" 0 (List.length (assignments (Session.poll nosy)))

let test_write_refused_notification () =
  let hub = fresh ~rows:1 () in
  let a = Session.connect hub "a" in
  List.iter
    (fun n -> ignore (Session.submit a (Travel.plain_txn (user n "-"))))
    [ "a1"; "a2"; "a3" ];
  let steal =
    [ Relational.Database.Delete
        ("Available", Relational.Tuple.of_list [ Relational.Value.Int 0; Relational.Value.Int 0 ]) ]
  in
  Alcotest.(check bool) "refused" true (Result.is_error (Session.write a steal));
  let refused =
    List.exists
      (function Session.Write_refused _ -> true | _ -> false)
      (Session.poll a)
  in
  Alcotest.(check bool) "refusal notified" true refused

let test_duplicate_connect_rejected () =
  let hub = fresh () in
  ignore (Session.connect hub "x");
  Alcotest.(check bool) "duplicate refused" true
    (match Session.connect hub "x" with
     | exception Invalid_argument _ -> true
     | _ -> false);
  (* Disconnect frees the name. *)
  let c = Session.connect hub "y" in
  Session.disconnect c;
  ignore (Session.connect hub "y")

let test_concurrent_clients () =
  (* Several threads booking through their own clients: the mutex must
     keep the engine consistent, and everyone gets acked + assigned. *)
  let hub = fresh ~rows:4 () in
  let n_threads = 4 and per_thread = 3 in
  let results_lock = Mutex.create () in
  let results = ref [] in
  let threads =
    List.init n_threads (fun ti ->
        Thread.create
          (fun () ->
            let c = Session.connect hub (Printf.sprintf "client%d" ti) in
            for j = 0 to per_thread - 1 do
              let name = Printf.sprintf "t%d_%d" ti j in
              ignore (Session.submit c (Travel.plain_txn (user name "-")))
            done;
            ignore (Session.ground_all c);
            let notes = Session.poll c in
            Mutex.lock results_lock;
            results := notes :: !results;
            Mutex.unlock results_lock)
          ())
  in
  List.iter Thread.join threads;
  let results = !results in
  let total_acks = List.fold_left (fun n notes -> n + List.length (acks notes)) 0 results in
  Alcotest.(check int) "all acked" (n_threads * per_thread) total_acks;
  Alcotest.(check bool) "engine consistent" true (Qdb.invariant_holds (Session.qdb hub));
  Alcotest.(check int) "all seated" (n_threads * per_thread)
    (Relational.Table.cardinality
       (Relational.Database.table (Qdb.db (Session.qdb hub)) "Bookings"))

let suite =
  [ Alcotest.test_case "commit ack" `Quick test_commit_ack;
    Alcotest.test_case "assignment on read" `Quick test_second_notification_on_read;
    Alcotest.test_case "assignment on partner arrival" `Quick
      test_second_notification_on_partner_arrival;
    Alcotest.test_case "assignment on another client's read" `Quick
      test_second_notification_on_other_clients_read;
    Alcotest.test_case "write refusal notification" `Quick test_write_refused_notification;
    Alcotest.test_case "duplicate connect" `Quick test_duplicate_connect_rejected;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
  ]

(* Tests for the grounding search: agreement with brute-force evaluation,
   the LIMIT-1 compilation path, the SAT backend, soft maximization and
   the solution cache. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
open Logic

(* A small database: R(a,b), S(b,c) over a tiny universe. *)
let make_db r_rows s_rows =
  let db = Database.create () in
  let r =
    Database.create_table db
      (Schema.make ~name:"R"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ())
  in
  let s =
    Database.create_table db
      (Schema.make ~name:"S"
         ~columns:[ Schema.column "b" Value.Tint; Schema.column "c" Value.Tint ]
         ())
  in
  List.iter (fun (a, b) -> ignore (Relational.Table.insert r (Tuple.of_list [ Value.Int a; Value.Int b ]))) r_rows;
  List.iter (fun (b, c) -> ignore (Relational.Table.insert s (Tuple.of_list [ Value.Int b; Value.Int c ]))) s_rows;
  db

(* Brute force: try every valuation of [vars] over [universe]. *)
let brute_force_satisfiable db universe formula =
  let vars = Term.Var_set.elements (Formula.vars formula) in
  let rec go assignment = function
    | [] ->
      let valuation v =
        List.find_map
          (fun (v', value) -> if Term.equal_var v v' then Some (Value.Int value) else None)
          assignment
      in
      (try Formula.eval db valuation formula with Formula.Unbound _ -> false)
    | v :: rest -> List.exists (fun value -> go ((v, value) :: assignment) rest) universe
  in
  go [] vars

let universe = [ 0; 1; 2; 3 ]

(* Random conjunctive formulas with disjunction and negation sprinkled in.
   Every variable appears in at least one positive atom (range
   restriction), matching what composition produces. *)
let pool = Array.init 3 (fun i -> Term.fresh_var (Printf.sprintf "s%d" i))

let formula_case_gen =
  let open QCheck.Gen in
  let var_gen = map (fun i -> pool.(i mod 3)) small_nat in
  let term_gen =
    oneof [ map (fun v -> Term.V v) var_gen; map (fun n -> Term.int (n mod 4)) small_nat ]
  in
  let atom_gen =
    let* rel = oneofl [ "R"; "S" ] in
    let* t1 = term_gen and* t2 = term_gen in
    return (Atom.make rel [ t1; t2 ])
  in
  let leaf_gen =
    oneof
      [ map (fun a -> Formula.Atom a) atom_gen;
        (let* t1 = term_gen and* t2 = term_gen in
         return (Formula.Eq (t1, t2)));
        (let* t1 = term_gen and* t2 = term_gen in
         return (Formula.Neq (t1, t2)));
        map (fun a -> Formula.Not_atom a) atom_gen;
      ]
  in
  (* Anchor: every pool variable in a positive atom. *)
  let anchors =
    List.map
      (fun v -> Formula.Atom (Atom.make "R" [ Term.V v; Term.V v ]))
      []
  in
  let* n_leaves = int_range 1 5 in
  let* leaves = list_size (return n_leaves) leaf_gen in
  let* ors = list_size (int_range 0 2) (list_size (int_range 1 3) leaf_gen) in
  let f = Formula.And (anchors @ leaves @ List.map (fun fs -> Formula.Or fs) ors) in
  (* Make it range-restricted: conjoin a positive atom per used variable. *)
  let used = Term.Var_set.elements (Formula.vars f) in
  let anchored =
    Formula.And (f :: List.map (fun v -> Formula.Atom (Atom.make "R" [ Term.V v; Term.V v ])) used)
  in
  let* anchor = QCheck.Gen.bool in
  return (if anchor then anchored else f)

let db_gen =
  let open QCheck.Gen in
  let row_gen = pair (int_range 0 3) (int_range 0 3) in
  pair (list_size (int_range 0 8) row_gen) (list_size (int_range 0 8) row_gen)

let case =
  QCheck.make
    (QCheck.Gen.pair formula_case_gen db_gen)
    ~print:(fun (f, _) -> Formula.to_string f)

let prop_backtrack_agrees_with_brute_force =
  QCheck.Test.make ~name:"backtrack = brute force (satisfiability)" ~count:500 case
    (fun (f, (r_rows, s_rows)) ->
      let db = make_db r_rows s_rows in
      let brute = brute_force_satisfiable db universe f in
      let solved = Solver.Backtrack.satisfiable db f in
      (* The solver may satisfy residual constraints with values outside the
         brute-force universe, so solver-SAT is allowed when brute says
         no only if brute is restricted...; in practice: solver SAT implies
         checking its witness.  Solver-UNSAT must imply brute-UNSAT. *)
      if solved then true else not brute)

let prop_backtrack_witness_is_model =
  QCheck.Test.make ~name:"backtrack witness satisfies the formula" ~count:500 case
    (fun (f, (r_rows, s_rows)) ->
      let db = make_db r_rows s_rows in
      match Solver.Backtrack.solve db f with
      | None -> true
      | Some subst ->
        (* Bind any leftover variables to distinct fresh values far outside
           the database (vacuous disequalities / negated atoms). *)
        let fresh = Hashtbl.create 4 in
        let valuation v =
          match Subst.resolve subst (Term.V v) with
          | Term.C value -> Some value
          | Term.V rep ->
            (match Hashtbl.find_opt fresh rep.Term.vid with
             | Some value -> Some value
             | None ->
               let value = Value.Int (1000 + Hashtbl.length fresh) in
               Hashtbl.add fresh rep.Term.vid value;
               Some value)
        in
        (try Formula.eval db valuation f with Formula.Unbound _ -> false))

let prop_backtrack_complete =
  QCheck.Test.make ~name:"brute-force SAT implies backtrack SAT" ~count:500 case
    (fun (f, (r_rows, s_rows)) ->
      let db = make_db r_rows s_rows in
      if brute_force_satisfiable db universe f then Solver.Backtrack.satisfiable db f else true)

let prop_limit_one_agrees =
  QCheck.Test.make ~name:"LIMIT-1 path = backtrack (satisfiability)" ~count:500 case
    (fun (f, (r_rows, s_rows)) ->
      let db = make_db r_rows s_rows in
      match Solver.Limit_one.satisfiable db f with
      | verdict -> verdict = Solver.Backtrack.satisfiable db f
      | exception Solver.Limit_one.Formula_too_large -> true)

let prop_sat_backend_agrees =
  QCheck.Test.make ~name:"SAT backend = backtrack (satisfiability)" ~count:500 case
    (fun (f, (r_rows, s_rows)) ->
      let db = make_db r_rows s_rows in
      match Sat.Encode.satisfiable db f with
      | Some verdict -> verdict = Solver.Backtrack.satisfiable db f
      | None -> true (* over budget *)
      | exception Sat.Encode.Unsupported _ -> true)

let test_solutions_complete () =
  let db = make_db [ (0, 1); (1, 2); (2, 3) ] [] in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let f = Formula.Atom (Atom.make "R" [ Term.V x; Term.V y ]) in
  Alcotest.(check int) "all rows enumerated" 3 (List.length (Solver.Backtrack.solutions db f));
  Alcotest.(check int) "limit respected" 2
    (List.length (Solver.Backtrack.solutions ~limit:2 db f))

let test_seeded_solve () =
  let db = make_db [ (0, 1); (1, 2) ] [] in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let f = Formula.Atom (Atom.make "R" [ Term.V x; Term.V y ]) in
  let seed = Subst.bind x (Term.int 1) Subst.empty in
  (match Solver.Backtrack.solve ~seed db f with
   | Some s -> Alcotest.(check bool) "seed respected" true
                 (Term.equal (Subst.resolve s (Term.V y)) (Term.int 2))
   | None -> Alcotest.fail "seeded solve failed");
  let bad_seed = Subst.bind x (Term.int 7) Subst.empty in
  Alcotest.(check bool) "conflicting seed unsat" true
    (Solver.Backtrack.solve ~seed:bad_seed db f = None)

let test_soft_maximization () =
  let db = make_db [ (0, 1); (1, 2); (2, 3) ] [ (1, 5) ] in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let hard = Formula.Atom (Atom.make "R" [ Term.V x; Term.V y ]) in
  (* Two optionals: y appears in S (only y=1 qualifies), and x=0 (which
     forces y=1 too) — both satisfiable together. *)
  let soft1 = Formula.Atom (Atom.make "S" [ Term.V y; Term.int 5 ]) in
  let soft2 = Formula.Eq (Term.V x, Term.int 0) in
  (match Solver.Soft.solve db ~hard ~soft:[ soft1; soft2 ] with
   | Some outcome ->
     Alcotest.(check int) "both optionals satisfied" 2 (Solver.Soft.satisfied_count outcome)
   | None -> Alcotest.fail "hard should be satisfiable");
  (* Conflicting optionals: x=2 excludes y=1; maximizer picks exactly one. *)
  let soft3 = Formula.Eq (Term.V x, Term.int 2) in
  (match Solver.Soft.solve db ~hard ~soft:[ soft1; soft3 ] with
   | Some outcome -> Alcotest.(check int) "one of two" 1 (Solver.Soft.satisfied_count outcome)
   | None -> Alcotest.fail "hard should be satisfiable");
  (* Unsatisfiable hard formula. *)
  let impossible = Formula.Atom (Atom.make "R" [ Term.int 9; Term.int 9 ]) in
  Alcotest.(check bool) "hard unsat" true (Solver.Soft.solve db ~hard:impossible ~soft:[ soft1 ] = None)

let test_cache_extension () =
  let db = make_db [ (0, 1); (1, 2) ] [] in
  let cache = Solver.Cache.create () in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let f1 = Formula.Atom (Atom.make "R" [ Term.V x; Term.int 1 ]) in
  (match Solver.Cache.extend_or_resolve cache db ~new_clauses:f1 ~full_formula:(lazy f1) with
   | Some _ -> ()
   | None -> Alcotest.fail "first solve failed");
  Alcotest.(check int) "first was a full solve" 1 (Solver.Cache.stats cache).Solver.Cache.full_solves;
  (* Extend with a second clause over a new variable: must hit. *)
  let f2 = Formula.Atom (Atom.make "R" [ Term.int 1; Term.V y ]) in
  (match
     Solver.Cache.extend_or_resolve cache db ~new_clauses:f2
       ~full_formula:(lazy (Formula.and_ [ f1; f2 ]))
   with
   | Some _ -> ()
   | None -> Alcotest.fail "extension failed");
  Alcotest.(check int) "extension hit" 1 (Solver.Cache.stats cache).Solver.Cache.extension_hits;
  (* A contradictory clause: extension misses, full solve fails. *)
  let f3 = Formula.Atom (Atom.make "R" [ Term.int 9; Term.int 9 ]) in
  Alcotest.(check bool) "unsat refused" true
    (Solver.Cache.extend_or_resolve cache db ~new_clauses:f3
       ~full_formula:(lazy (Formula.and_ [ f1; f2; f3 ]))
     = None);
  (* Witness survives rejection. *)
  Alcotest.(check bool) "witness kept" true (Option.is_some (Solver.Cache.witness cache))

let test_cache_revalidate () =
  let db = make_db [ (0, 1) ] [] in
  let cache = Solver.Cache.create () in
  let x = Term.fresh_var "x" in
  let f = Formula.Atom (Atom.make "R" [ Term.V x; Term.int 1 ]) in
  ignore (Solver.Cache.extend_or_resolve cache db ~new_clauses:f ~full_formula:(lazy f));
  Alcotest.(check bool) "valid after solve" true (Solver.Cache.revalidate cache db f);
  (* Remove the supporting row: witness must be dropped. *)
  ignore (Database.apply_ops db [ Database.Delete ("R", Tuple.of_list [ Value.Int 0; Value.Int 1 ]) ]);
  Alcotest.(check bool) "invalid after delete" false (Solver.Cache.revalidate cache db f);
  Alcotest.(check bool) "witness dropped" true (Solver.Cache.witness cache = None)

let test_cache_multi_witness () =
  let db = make_db [ (0, 1); (1, 2); (2, 3) ] [] in
  let cache = Solver.Cache.create ~capacity:3 () in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let f = Formula.Atom (Atom.make "R" [ Term.V x; Term.V y ]) in
  ignore (Solver.Cache.extend_or_resolve cache db ~new_clauses:f ~full_formula:(lazy f));
  Alcotest.(check int) "one witness after solve" 1 (List.length (Solver.Cache.witnesses cache));
  (* Refill tops the cache up to capacity with distinct solutions. *)
  Alcotest.(check int) "refilled to capacity" 3 (Solver.Cache.refill cache db f);
  (* Deleting a supporting row drops exactly the witnesses it carried. *)
  ignore (Database.apply_ops db [ Database.Delete ("R", Tuple.of_list [ Value.Int 0; Value.Int 1 ]) ]);
  Alcotest.(check bool) "still valid via spare witnesses" true
    (Solver.Cache.revalidate cache db f);
  Alcotest.(check int) "one witness dropped" 2 (List.length (Solver.Cache.witnesses cache));
  (* set_witness is authoritative: spares are dropped. *)
  (match Solver.Cache.witness cache with
   | Some w -> Solver.Cache.set_witness cache w
   | None -> Alcotest.fail "expected a witness");
  Alcotest.(check int) "spares dropped" 1 (List.length (Solver.Cache.witnesses cache))

let test_cache_spare_absorbs_extension () =
  (* With two witnesses cached, an extension that contradicts the primary
     must still hit via the spare. *)
  let db = make_db [ (0, 1); (1, 2) ] [] in
  let cache = Solver.Cache.create ~capacity:2 () in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let f = Formula.Atom (Atom.make "R" [ Term.V x; Term.V y ]) in
  ignore (Solver.Cache.extend_or_resolve cache db ~new_clauses:f ~full_formula:(lazy f));
  ignore (Solver.Cache.refill cache db f);
  Alcotest.(check int) "two witnesses" 2 (List.length (Solver.Cache.witnesses cache));
  (* New clause: x must be 1 — contradicts whichever witness picked x=0. *)
  let clause = Formula.Eq (Term.V x, Term.int 1) in
  (match
     Solver.Cache.extend_or_resolve cache db ~new_clauses:clause
       ~full_formula:(lazy (Formula.and_ [ f; clause ]))
   with
   | Some w ->
     Alcotest.(check bool) "x pinned to 1" true
       (Term.equal (Subst.resolve w (Term.V x)) (Term.int 1))
   | None -> Alcotest.fail "extension should succeed");
  let stats = Solver.Cache.stats cache in
  Alcotest.(check int) "no full re-solve needed" 1 stats.Solver.Cache.full_solves

let test_order_constraints_in_search () =
  let db = make_db [ (0, 1); (1, 2); (2, 3) ] [] in
  let x = Term.fresh_var "x" and y = Term.fresh_var "y" in
  let atom = Formula.Atom (Atom.make "R" [ Term.V x; Term.V y ]) in
  (* x < y holds on every row of this R; y < x on none. *)
  Alcotest.(check bool) "lt sat" true
    (Solver.Backtrack.satisfiable db (Formula.and_ [ atom; Formula.lt (Term.V x) (Term.V y) ]));
  Alcotest.(check bool) "reverse lt unsat" false
    (Solver.Backtrack.satisfiable db (Formula.and_ [ atom; Formula.lt (Term.V y) (Term.V x) ]));
  (* Le boundary. *)
  (match
     Solver.Backtrack.solve db
       (Formula.and_ [ atom; Formula.le (Term.int 2) (Term.V x) ])
   with
   | Some s ->
     Alcotest.(check bool) "x >= 2" true
       (Term.equal (Subst.resolve s (Term.V x)) (Term.int 2))
   | None -> Alcotest.fail "le should be satisfiable");
  (* Vacuous order constraint on an unconstrained variable. *)
  let free = Term.fresh_var "free" in
  Alcotest.(check bool) "vacuous lt" true
    (Solver.Backtrack.satisfiable db (Formula.lt (Term.V free) (Term.int 0)));
  (* LIMIT-1 path agrees on the ground cases. *)
  Alcotest.(check bool) "limit-one lt" true
    (Solver.Limit_one.satisfiable db (Formula.and_ [ atom; Formula.lt (Term.V x) (Term.V y) ]));
  Alcotest.(check bool) "limit-one reverse lt" false
    (Solver.Limit_one.satisfiable db (Formula.and_ [ atom; Formula.lt (Term.V y) (Term.V x) ]))

let test_node_limit () =
  (* A pigeonhole-ish instance with a tiny node budget must raise. *)
  let rows = List.init 12 (fun i -> (i, i)) in
  let db = make_db rows [] in
  let vars = List.init 8 (fun i -> Term.fresh_var (Printf.sprintf "p%d" i)) in
  let atoms = List.map (fun v -> Formula.Atom (Atom.make "R" [ Term.V v; Term.V v ])) vars in
  let rec all_pairs = function
    | [] -> []
    | v :: rest -> List.map (fun w -> Formula.Neq (Term.V v, Term.V w)) rest @ all_pairs rest
  in
  let f = Formula.And (atoms @ all_pairs vars) in
  Alcotest.(check bool) "tiny budget raises" true
    (match Solver.Backtrack.solve ~node_limit:3 db f with
     | exception Solver.Backtrack.Too_many_nodes -> true
     | _ -> false);
  Alcotest.(check bool) "normal budget solves" true (Solver.Backtrack.satisfiable db f)

let suite =
  [ QCheck_alcotest.to_alcotest prop_backtrack_agrees_with_brute_force;
    QCheck_alcotest.to_alcotest prop_backtrack_witness_is_model;
    QCheck_alcotest.to_alcotest prop_backtrack_complete;
    QCheck_alcotest.to_alcotest prop_limit_one_agrees;
    QCheck_alcotest.to_alcotest prop_sat_backend_agrees;
    Alcotest.test_case "solutions enumeration" `Quick test_solutions_complete;
    Alcotest.test_case "seeded solve" `Quick test_seeded_solve;
    Alcotest.test_case "soft maximization" `Quick test_soft_maximization;
    Alcotest.test_case "cache extension" `Quick test_cache_extension;
    Alcotest.test_case "cache revalidation" `Quick test_cache_revalidate;
    Alcotest.test_case "cache multi-witness" `Quick test_cache_multi_witness;
    Alcotest.test_case "cache spare absorbs extension" `Quick test_cache_spare_absorbs_extension;
    Alcotest.test_case "order constraints" `Quick test_order_constraints_in_search;
    Alcotest.test_case "node limit" `Quick test_node_limit;
  ]

(* Tests for the SQL-like surface syntax (Figure 1). *)

module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Sql = Quantum.Sql_parser
module Flights = Workload.Flights
open Logic

let schema_of db rel =
  Option.map Relational.Table.schema (Relational.Database.find_table db rel)

let fresh () =
  let store =
    Flights.fresh_store { Flights.flights = 2; rows_per_flight = 2; dest = "LA" }
  in
  let qdb = Qdb.create store in
  (store, qdb, schema_of (Qdb.db qdb))

(* Figure 1's transaction, adapted to our travel schema.  The paper's SQL
   treats "OPTIONAL Available A2" as a mere seat-number domain; its
   Datalog form uses only Bookings(G, f, s2) ∧ Adjacent(s1, s2), which is
   what we express here with an OPTIONAL Bookings item. *)
let figure1_text =
  {|SELECT 'Mickey', A1.fno AS @f, A1.seat AS @s
    FROM Flights F, Available A1, OPTIONAL Bookings B2, OPTIONAL Adjacent J
    WHERE F.dest = 'LA'
      AND A1.fno = F.fno
      AND B2.user = 'Goofy' AND B2.fno = A1.fno
      AND J.s1 = A1.seat AND J.s2 = B2.seat
    CHOOSE 1
    FOLLOWED BY (
      DELETE (@f, @s) FROM Available;
      INSERT ('Mickey', @f, @s) INTO Bookings; )|}

let test_figure1_structure () =
  let _, _, schema_of = fresh () in
  let txn = Sql.parse_txn ~label:"Mickey" ~schema_of figure1_text in
  (* Hard: Flights, Available (A1).  Optional: Bookings (B2), Adjacent. *)
  Alcotest.(check int) "hard atoms" 2 (List.length txn.Rtxn.hard);
  Alcotest.(check int) "optional atoms" 2 (List.length txn.Rtxn.optional);
  Alcotest.(check int) "hard constraints" 2 (List.length txn.Rtxn.constraints);
  Alcotest.(check int) "optional constraints" 4 (List.length txn.Rtxn.optional_constraints);
  Alcotest.(check int) "updates" 2 (List.length txn.Rtxn.updates);
  (* The insert uses the @-bound variables of A1. *)
  (match Rtxn.inserts txn with
   | [ ins ] ->
     Alcotest.(check string) "insert relation" "Bookings" ins.Atom.rel;
     Alcotest.(check bool) "constant user" true (Term.equal ins.Atom.args.(0) (Term.str "Mickey"))
   | _ -> Alcotest.fail "one insert expected")

let test_figure1_executes () =
  let store, qdb, schema_of = fresh () in
  (* Goofy books flight 0 seat 1 classically. *)
  assert (Workload.Travel.book store { Workload.Travel.name = "Goofy"; partner = ""; flight = 0 } 1);
  let txn = Sql.parse_txn ~label:"Mickey" ~schema_of figure1_text in
  (match Qdb.submit qdb txn with
   | Qdb.Committed id -> ignore (Qdb.ground qdb id)
   | Qdb.Rejected reason | Qdb.Overloaded reason -> Alcotest.failf "rejected: %s" reason);
  match Flights.booking_of (Qdb.db qdb) "Mickey" with
  | Some (f, s) ->
    Alcotest.(check int) "same flight as Goofy" 0 f;
    Alcotest.(check bool) "adjacent to Goofy" true (Flights.seats_adjacent (Qdb.db qdb) s 1)
  | None -> Alcotest.fail "Mickey should be booked"

let test_in_membership () =
  let _, _, schema_of = fresh () in
  (* Figure 1's (…) IN Rel idiom as a hard membership atom. *)
  let txn =
    Sql.parse_txn ~schema_of
      {|SELECT A.seat AS @s FROM Available A
        WHERE (A.fno, A.seat) IN Available AND A.fno = 0
        CHOOSE 1 FOLLOWED BY ( DELETE (0, @s) FROM Available; )|}
  in
  Alcotest.(check int) "membership adds an atom" 2 (List.length txn.Rtxn.hard)

let test_unqualified_columns () =
  let _, _, schema_of = fresh () in
  (* 'dest' appears only in Flights: unqualified reference resolves. *)
  let txn =
    Sql.parse_txn ~schema_of
      {|SELECT F.fno FROM Flights F WHERE dest = 'LA' CHOOSE 1 FOLLOWED BY ( )|}
  in
  Alcotest.(check int) "one atom" 1 (List.length txn.Rtxn.hard);
  (* 'fno' is ambiguous across Flights and Available. *)
  Alcotest.(check bool) "ambiguous column" true
    (match
       Sql.parse_txn ~schema_of
         {|SELECT 1 FROM Flights F, Available A WHERE fno = 1 CHOOSE 1 FOLLOWED BY ( )|}
     with
     | exception Sql.Syntax_error _ -> true
     | _ -> false)

let test_errors () =
  let _, _, schema_of = fresh () in
  let fails input =
    match Sql.parse_txn ~schema_of input with
    | exception Sql.Syntax_error _ -> true
    | exception Rtxn.Ill_formed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown relation" true
    (fails {|SELECT 1 FROM Nope N CHOOSE 1 FOLLOWED BY ( )|});
  Alcotest.(check bool) "unknown column" true
    (fails {|SELECT F.wings FROM Flights F CHOOSE 1 FOLLOWED BY ( )|});
  Alcotest.(check bool) "missing CHOOSE" true
    (fails {|SELECT 1 FROM Flights F FOLLOWED BY ( )|});
  Alcotest.(check bool) "@ before AS" true
    (fails {|SELECT @x FROM Flights F CHOOSE 1 FOLLOWED BY ( )|});
  Alcotest.(check bool) "duplicate alias" true
    (fails {|SELECT 1 FROM Flights F, Available F CHOOSE 1 FOLLOWED BY ( )|});
  (* FOLLOWED BY using a variable bound only by an OPTIONAL item. *)
  Alcotest.(check bool) "optional var in update" true
    (fails
       {|SELECT A2.seat AS @s FROM Available A1, OPTIONAL Available A2
         CHOOSE 1 FOLLOWED BY ( DELETE (A2.fno, @s) FROM Available; )|})

let test_case_insensitive_keywords () =
  let _, _, schema_of = fresh () in
  let txn =
    Sql.parse_txn ~schema_of
      {|select A.fno as @f, A.seat as @s from Available A where A.fno = 1
        choose 1 followed by ( delete (@f, @s) from Available; )|}
  in
  Alcotest.(check int) "one delete" 1 (List.length (Rtxn.deletes txn))

let suite =
  [ Alcotest.test_case "Figure 1 structure" `Quick test_figure1_structure;
    Alcotest.test_case "Figure 1 executes" `Quick test_figure1_executes;
    Alcotest.test_case "IN membership" `Quick test_in_membership;
    Alcotest.test_case "unqualified columns" `Quick test_unqualified_columns;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "case-insensitive keywords" `Quick test_case_insensitive_keywords;
  ]

(* Tests for the file-based WAL backend: persistence across re-opens, and
   a full engine crash/recovery cycle over a real file. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Store = Relational.Store
module Wal = Relational.Wal
module Qdb = Quantum.Qdb
module Flights = Workload.Flights
module Travel = Workload.Travel

let with_temp_wal f =
  let path = Filename.temp_file "qdb_wal" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_file_backend_roundtrip () =
  with_temp_wal (fun path ->
      let backend = Wal.file_backend path in
      backend.Wal.append "line one";
      backend.Wal.append "line two";
      Alcotest.(check (list string)) "readback" [ "line one"; "line two" ] (backend.Wal.read_all ());
      (* A fresh backend over the same path sees the same contents. *)
      let backend2 = Wal.file_backend path in
      Alcotest.(check (list string)) "reopen" [ "line one"; "line two" ] (backend2.Wal.read_all ());
      backend2.Wal.reset ();
      Alcotest.(check (list string)) "reset" [] (backend.Wal.read_all ()))

let test_store_on_file () =
  with_temp_wal (fun path ->
      let schema =
        Relational.Schema.make ~name:"T"
          ~columns:[ Relational.Schema.column "a" Value.Tint ]
          ()
      in
      let store = Store.create (Wal.file_backend path) in
      ignore (Store.create_table store schema);
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 1 ]) ]);
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 2 ]) ]);
      ignore (Store.apply store [ Database.Delete ("T", Tuple.of_list [ Value.Int 1 ]) ]);
      (* Recover through a fresh backend over the same file. *)
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check bool) "1 gone" false (Database.mem_tuple (Store.db recovered) "T" (Tuple.of_list [ Value.Int 1 ]));
      Alcotest.(check bool) "2 present" true (Database.mem_tuple (Store.db recovered) "T" (Tuple.of_list [ Value.Int 2 ])))

let test_engine_recovery_on_file () =
  with_temp_wal (fun path ->
      let geometry = { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
      let store = Flights.fresh_store ~backend:(Wal.file_backend path) geometry in
      let qdb = Qdb.create store in
      ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "a"; partner = "-"; flight = 0 }));
      ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "b"; partner = "-"; flight = 0 }));
      ignore (Qdb.ground qdb 0);
      (* Recover from the file alone. *)
      let qdb' = Qdb.recover (Wal.file_backend path) in
      Alcotest.(check int) "one pending" 1 (Qdb.pending_count qdb');
      Alcotest.(check bool) "a durable" true (Flights.booking_of (Qdb.db qdb') "a" <> None);
      ignore (Qdb.ground_all qdb');
      Alcotest.(check bool) "b booked after recovery" true
        (Flights.booking_of (Qdb.db qdb') "b" <> None))

let test_checkpoint_compaction () =
  with_temp_wal (fun path ->
      let schema =
        Relational.Schema.make ~name:"T"
          ~columns:[ Relational.Schema.column "a" Value.Tint ]
          ()
      in
      let store = Store.create (Wal.file_backend path) in
      ignore (Store.create_table store schema);
      for i = 1 to 20 do
        ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int i ]) ])
      done;
      Store.checkpoint store;
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 99 ]) ]);
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check int) "all rows restored" 21
        (Relational.Table.cardinality (Database.table (Store.db recovered) "T")))

let int_schema name =
  Relational.Schema.make ~name ~columns:[ Relational.Schema.column "a" Value.Tint ] ()

(* Corrupt the tail of a real on-disk log; lenient recovery truncates,
   physically repairs the file, and later appends survive. *)
let test_file_corrupt_tail_repair () =
  with_temp_wal (fun path ->
      let store = Store.create (Wal.file_backend path) in
      ignore (Store.create_table store (int_schema "T"));
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 1 ]) ]);
      Store.close store;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "7 00000000 (Begin half-a-reco";
      close_out oc;
      let lines_before = List.length ((Wal.file_backend path).Wal.read_all ()) in
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check bool) "row survived" true
        (Database.mem_tuple (Store.db recovered) "T" (Tuple.of_list [ Value.Int 1 ]));
      (match Store.recovery_report recovered with
       | Some r -> Alcotest.(check int) "tail dropped" 1 r.Wal.records_dropped
       | None -> Alcotest.fail "recovery report expected");
      (* File physically shrank by the damaged line. *)
      let lines_after = List.length ((Wal.file_backend path).Wal.read_all ()) in
      Alcotest.(check int) "file repaired" (lines_before - 1) lines_after;
      (* New writes after repair are durable. *)
      ignore (Store.apply recovered [ Database.Insert ("T", Tuple.of_list [ Value.Int 2 ]) ]);
      Store.close recovered;
      let again = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check bool) "post-repair write durable" true
        (Database.mem_tuple (Store.db again) "T" (Tuple.of_list [ Value.Int 2 ])))

(* Sync policies: Every_n and Never count syncs differently; Store.sync
   forces the flush either way and the data is durable after close. *)
let test_sync_policies () =
  with_temp_wal (fun path ->
      let store = Store.create ~sync:(Wal.Every_n 10) (Wal.file_backend path) in
      ignore (Store.create_table store (int_schema "T"));
      for i = 1 to 4 do
        ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int i ]) ])
      done;
      Store.sync store;
      Store.close store;
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check int) "all rows durable under Every_n" 4
        (Relational.Table.cardinality (Database.table (Store.db recovered) "T")));
  with_temp_wal (fun path ->
      let store = Store.create ~sync:Wal.Never (Wal.file_backend path) in
      ignore (Store.create_table store (int_schema "T"));
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 1 ]) ]);
      (* Never syncs on its own; close flushes. *)
      Store.close store;
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check int) "rows durable after close under Never" 1
        (Relational.Table.cardinality (Database.table (Store.db recovered) "T")))

(* Compaction really shrinks the on-disk segment: many batches collapse
   to one checkpoint record. *)
let test_compaction_shrinks_file () =
  with_temp_wal (fun path ->
      let store = Store.create (Wal.file_backend path) in
      ignore (Store.create_table store (int_schema "T"));
      for i = 1 to 50 do
        ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int i ]) ])
      done;
      let before = List.length ((Wal.file_backend path).Wal.read_all ()) in
      Store.checkpoint store;
      let after = List.length ((Wal.file_backend path).Wal.read_all ()) in
      Alcotest.(check bool) "log shrank" true (after < before);
      Alcotest.(check int) "single checkpoint record" 1 after;
      Store.close store;
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check int) "all rows restored from checkpoint" 50
        (Relational.Table.cardinality (Database.table (Store.db recovered) "T")))

let suite =
  [ Alcotest.test_case "file backend roundtrip" `Quick test_file_backend_roundtrip;
    Alcotest.test_case "store on file" `Quick test_store_on_file;
    Alcotest.test_case "engine recovery on file" `Quick test_engine_recovery_on_file;
    Alcotest.test_case "checkpoint compaction" `Quick test_checkpoint_compaction;
    Alcotest.test_case "file corrupt tail repaired" `Quick test_file_corrupt_tail_repair;
    Alcotest.test_case "sync policies" `Quick test_sync_policies;
    Alcotest.test_case "compaction shrinks file" `Quick test_compaction_shrinks_file;
  ]
